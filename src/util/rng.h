// Deterministic, splittable random number generation.
//
// Every stochastic component in Helios (data synthesis, weight init, neuron
// rotation, partitioners, ...) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit on a given build. The generator is
// xoshiro256++ seeded through splitmix64, which gives high-quality streams
// and cheap "forking" of statistically independent child generators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace helios::util {

/// Complete serialized position of an Rng stream. Includes the Box-Muller
/// cache: normal() draws two uniforms and hands back the second on the next
/// call, so a generator snapshotted between the two would otherwise be
/// impossible to reconstruct mid-sequence from the xoshiro words alone.
struct RngState {
  std::uint64_t words[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  friend bool operator==(const RngState& a, const RngState& b) {
    return a.words[0] == b.words[0] && a.words[1] == b.words[1] &&
           a.words[2] == b.words[2] && a.words[3] == b.words[3] &&
           a.cached_normal == b.cached_normal &&
           a.has_cached_normal == b.has_cached_normal;
  }
};

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Not thread-safe; give each logical actor (client, dataset, selector) its
/// own instance, typically via fork().
class Rng {
 public:
  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (caches the second draw).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (order randomized).
  /// Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// A child generator whose stream is independent of this one.
  /// Forking with distinct `stream` values yields distinct children even
  /// without advancing the parent.
  Rng fork(std::uint64_t stream);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Snapshot of the full stream position (checkpointing). A generator
  /// restored via from_state() produces the identical future sequence,
  /// including fork() children (fork reads state without advancing it).
  RngState state() const;
  /// Reconstructs a generator at exactly the snapshotted position.
  static Rng from_state(const RngState& s);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace helios::util
