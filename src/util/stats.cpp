#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace helios::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  if (window == 0) throw std::invalid_argument("moving_average: window == 0");
  std::vector<double> out(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const std::size_t effective = std::min(i + 1, window);
    out[i] = acc / static_cast<double>(effective);
  }
  return out;
}

std::size_t first_reaching(std::span<const double> xs, double threshold) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= threshold) return i;
  }
  return npos;
}

}  // namespace helios::util
