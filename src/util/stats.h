// Small statistics helpers shared by the FL metrics recorder and the
// benchmark harness (running moments, percentiles, series summaries).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace helios::util {

/// Streaming mean / variance / extrema via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (0 when fewer than two samples).
  double variance() const;
  /// Sample variance, n-1 denominator (0 when fewer than two samples).
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a series; 0 for an empty series.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double q);

/// Trailing moving average with the given window (window >= 1); output has
/// the same length as the input, with a shorter effective window at the head.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window);

/// Index of the first element >= threshold, or npos if never reached.
std::size_t first_reaching(std::span<const double> xs, double threshold);

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

}  // namespace helios::util
