#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace helios::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace helios::util
