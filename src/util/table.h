// Console table / CSV emission used by the benchmark harness to print the
// paper's tables and figure series in a uniform, diffable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace helios::util {

/// Column-aligned text table. Build with headers, add stringly-typed rows
/// (helpers format doubles), then stream to stdout or a CSV file.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads / truncates to the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Pretty, column-aligned rendering.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (no quoting; callers avoid commas in cells).
  void print_csv(std::ostream& os) const;

  /// Fixed-precision formatting helper for numeric cells.
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner for a figure/table reproduction.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace helios::util
