#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>

namespace helios::util {
namespace {

/// Set on pool workers for their whole lifetime and on any thread while it
/// executes a parallel_region chunk.
thread_local bool t_in_parallel_region = false;

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int env_threads() {
  const char* s = std::getenv("HELIOS_THREADS");
  if (s && *s) {
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end != s && *end == '\0' && v > 0) {
      return static_cast<int>(std::min<long>(v, 1024));
    }
  }
  return hardware_threads();
}

struct GlobalPoolState {
  std::mutex mu;
  int override_threads = 0;  // 0 = no override
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& global_state() {
  static GlobalPoolState state;
  return state;
}

int resolved_threads(const GlobalPoolState& state) {
  return state.override_threads > 0 ? state.override_threads : env_threads();
}

/// Cached resolved thread count (0 = unresolved): global_thread_count sits
/// on the kernels' parallel-gating path, so the common case must be one
/// relaxed atomic load, not a mutex.
std::atomic<int> g_cached_threads{0};

}  // namespace

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int t = 0; t < size_ - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_parallel_region = true;  // workers never open nested regions
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (worker_count() == 0) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_region(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t max_chunks = (range + grain - 1) / grain;
  const int nchunks = static_cast<int>(
      std::min<std::int64_t>({max_chunks, size_, range}));
  if (nchunks <= 1 || t_in_parallel_region) {
    const bool saved = t_in_parallel_region;
    t_in_parallel_region = true;
    body(begin, end);
    t_in_parallel_region = saved;
    return;
  }

  struct Region {
    std::mutex mu;
    std::condition_variable cv;
    int done = 0;
    std::exception_ptr error;
  } region;

  auto run_chunk = [&](int c) {
    const std::int64_t lo = begin + range * c / nchunks;
    const std::int64_t hi = begin + range * (c + 1) / nchunks;
    const bool saved = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      if (lo < hi) body(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.mu);
      if (!region.error) region.error = std::current_exception();
    }
    t_in_parallel_region = saved;
    // The notify must happen under the region lock: once `done` reaches
    // nchunks the caller may return and destroy `region`.
    std::lock_guard<std::mutex> lock(region.mu);
    if (++region.done == nchunks) region.cv.notify_all();
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Shutdown racing a new region: run it inline instead of enqueueing.
      for (int c = 1; c < nchunks; ++c) run_chunk(c);
    } else {
      for (int c = 1; c < nchunks; ++c) {
        queue_.push_back([&run_chunk, c] { run_chunk(c); });
      }
    }
  }
  cv_.notify_all();
  run_chunk(0);

  std::unique_lock<std::mutex> lock(region.mu);
  region.cv.wait(lock, [&] { return region.done == nchunks; });
  if (region.error) std::rethrow_exception(region.error);
}

int global_thread_count() {
  const int cached = g_cached_threads.load(std::memory_order_relaxed);
  if (cached > 0) return cached;
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  const int threads = resolved_threads(state);
  g_cached_threads.store(threads, std::memory_order_relaxed);
  return threads;
}

void set_global_threads(int n) {
  if (n < 0) throw std::invalid_argument("set_global_threads: negative n");
  GlobalPoolState& state = global_state();
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.override_threads = n;
    g_cached_threads.store(resolved_threads(state),
                           std::memory_order_relaxed);
    old = std::move(state.pool);  // rebuilt lazily at the new size
  }
  // Old pool (if any) drains and joins outside the state lock.
}

ThreadPool& global_pool() {
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(resolved_threads(state));
  }
  return *state.pool;
}

namespace detail {

bool in_parallel_region() { return t_in_parallel_region; }

ThreadPool* pool_for_new_region() {
  if (global_thread_count() <= 1) return nullptr;  // never builds a pool
  GlobalPoolState& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(resolved_threads(state));
  }
  return state.pool->size() > 1 ? state.pool.get() : nullptr;
}

}  // namespace detail
}  // namespace helios::util
