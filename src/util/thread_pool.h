// Work-queue thread pool and a deterministic parallel_for.
//
// Helios parallelizes at two levels (DESIGN.md, "Threading model"):
//   * round-level — Fleet::parallel_train fans a cycle's independent client
//     updates across the pool,
//   * intra-op    — the matmul kernels in tensor/ops.cpp and the im2col
//     conv2d split output rows / filters / batch samples across the pool.
//
// Determinism contract: parallel_for partitions the OUTPUT index range into
// contiguous static chunks. Every output element is produced by exactly one
// chunk using the same inner accumulation order as the sequential loop, so
// results are bit-identical for any thread count (HELIOS_THREADS=1 and =4
// agree to the last bit; see tests/determinism_test.cpp).
//
// Sizing: the global pool reads HELIOS_THREADS (positive integer) once, or
// takes a programmatic override via set_global_threads(); it defaults to
// std::thread::hardware_concurrency(). A 1-thread configuration spawns no
// worker threads at all and parallel_for degenerates to an inline call.
//
// Nesting: a parallel_for issued from inside a pool worker — or from inside
// another parallel_for chunk — runs inline. One level of parallelism is
// enough (round-level fan-out already owns the cores during training) and
// inline nesting makes blocking on inner regions deadlock-free.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace helios::util {

class ThreadPool {
 public:
  /// A pool of total concurrency `threads` (clamped to >= 1): the caller of
  /// parallel_region participates, so only `threads - 1` workers are
  /// spawned. ThreadPool(1) spawns no threads.
  explicit ThreadPool(int threads);
  /// Drains remaining queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }
  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. With no workers (size() == 1) the task runs inline.
  /// Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Splits [begin, end) into at most size() contiguous chunks of at least
  /// `grain` elements, runs `body(lo, hi)` for each (one on the calling
  /// thread), and blocks until all complete. The first exception thrown by
  /// any chunk is rethrown on the caller after the region finishes.
  void parallel_region(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t)>& body);

 private:
  void worker_loop();

  int size_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Thread count the global pool is (or will be) built with: the
/// set_global_threads override, else HELIOS_THREADS, else
/// hardware_concurrency.
int global_thread_count();

/// Overrides the global pool size (n >= 1), rebuilding the pool; n = 0
/// clears the override back to HELIOS_THREADS / hardware defaults. Call
/// only while no parallel work is in flight (tests and benches do this
/// between runs).
void set_global_threads(int n);

/// The lazily constructed process-wide pool (built on first parallel use).
ThreadPool& global_pool();

namespace detail {
/// True on pool workers and inside parallel_for chunks: nested regions run
/// inline there.
bool in_parallel_region();
/// Global pool if it should be used for a new region, else nullptr
/// (1-thread configuration — never constructs a pool in that case).
ThreadPool* pool_for_new_region();
}  // namespace detail

/// Deterministic static-chunk parallel loop over [begin, end): `body` is
/// invoked on contiguous sub-ranges that cover the range exactly once, in
/// parallel when the global pool has more than one thread and the range
/// exceeds `grain`, inline otherwise. Exceptions propagate to the caller.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Body&& body) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (range <= grain || detail::in_parallel_region()) {
    body(begin, end);
    return;
  }
  ThreadPool* pool = detail::pool_for_new_region();
  if (!pool) {
    body(begin, end);
    return;
  }
  Body& ref = body;  // materialize the forwarding reference once
  pool->parallel_region(
      begin, end, grain,
      [&ref](std::int64_t lo, std::int64_t hi) { ref(lo, hi); });
}

}  // namespace helios::util
