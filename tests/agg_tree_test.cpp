// The hierarchical aggregation subsystem (src/agg + fl::HierarchySession).
//
// The load-bearing contract: a single-edge tree routes every update through
// encode-frame -> fold -> collapse -> finalize and still reproduces the flat
// server path BIT FOR BIT, for every strategy, at 1 and 4 threads — merging
// one child into zero-initialized accumulators is exact (0 + x == x), and
// the merge-frame round trip is raw IEEE bits. Multi-edge trees differ only
// in floating-point summation order and stay bit-identical across thread
// counts. On top of that: weight-carrying renormalization when a tier drops
// a frame, exact disjoint-union merging of the sharded U^ij bookkeeping,
// and checkpointable cross-round channel state.
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/checkpoint.h"
#include "fl/fedprox.h"
#include "fl/hierarchy.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "net/wire.h"
#include "obs/journal_reader.h"
#include "obs/telemetry.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

namespace fs = std::filesystem;

struct ThreadGuard {
  ~ThreadGuard() { util::set_global_threads(0); }
};

// ---- Topology ---------------------------------------------------------------

TEST(TreeTopologyTest, DepthPlacementAndRegionalGrouping) {
  agg::TreeTopology flat;
  EXPECT_FALSE(flat.active());
  EXPECT_EQ(flat.depth(), 1);

  agg::TreeTopology depth2;
  depth2.edge_nodes = 8;
  EXPECT_TRUE(depth2.active());
  EXPECT_EQ(depth2.depth(), 2);
  EXPECT_EQ(depth2.regional_nodes(), 0);

  agg::TreeTopology depth3;
  depth3.edge_nodes = 8;
  depth3.fanout = 3;
  EXPECT_EQ(depth3.depth(), 3);
  EXPECT_EQ(depth3.regional_nodes(), 3);  // ceil(8 / 3)
  EXPECT_EQ(depth3.regional_of(0), 0);
  EXPECT_EQ(depth3.regional_of(5), 1);
  EXPECT_EQ(depth3.regional_of(7), 2);

  // Placement is a pure function of the id: stable under churn and resume.
  for (int id = 0; id < 40; ++id) {
    const int e = depth3.edge_of(id);
    EXPECT_GE(e, 0);
    EXPECT_LT(e, depth3.edge_nodes);
    EXPECT_EQ(e, depth3.edge_of(id));
  }
  // fanout >= edge_nodes collapses the regional tier.
  agg::TreeTopology wide = depth3;
  wide.fanout = 8;
  EXPECT_EQ(wide.depth(), 2);
}

// ---- Accumulator + merge frames ---------------------------------------------

/// Geometry + synthetic masked updates for accumulator unit tests.
struct AccFixture {
  fl::Fleet fleet = testing::make_fleet();
  const agg::ModelGeometry& geo = fleet.server().geometry();

  struct Update {
    std::vector<float> params;
    std::vector<float> buffers;
    std::vector<std::uint8_t> mask;
  };

  /// `integral` draws integer-valued floats so double sums are exact and
  /// reassociation (tree merges) cannot change them.
  Update make_update(std::uint64_t seed, bool masked, bool integral) const {
    util::Rng rng(seed);
    Update u;
    u.params.resize(geo.param_count);
    u.buffers.resize(geo.buffer_count);
    for (auto& v : u.params) {
      v = integral ? static_cast<float>(rng.uniform_int(17) - 8)
                   : static_cast<float>(rng.normal());
    }
    for (auto& v : u.buffers) {
      v = integral ? static_cast<float>(rng.uniform_int(9))
                   : static_cast<float>(rng.normal());
    }
    if (masked) {
      u.mask.resize(geo.neurons.size());
      for (auto& b : u.mask) b = rng.uniform_int(2) != 0;
    }
    return u;
  }

  static agg::UpdateView view(int id, const Update& u) {
    return {id, u.params, u.buffers, u.mask};
  }
};

TEST(StreamingAccumulatorTest, MergeFrameRoundTripIsBitExact) {
  AccFixture fx;
  agg::StreamingAccumulator acc(&fx.geo);
  const AccFixture::Update a = fx.make_update(3, true, false);
  const AccFixture::Update b = fx.make_update(4, false, false);
  acc.fold(AccFixture::view(0, a), {1.0, 0.75}, true);
  acc.fold(AccFixture::view(1, b), {2.0, 1.25}, true);

  const std::vector<std::uint8_t> frame = acc.encode_frame();
  EXPECT_EQ(frame.size(), agg::StreamingAccumulator::frame_bytes(fx.geo));
  const agg::StreamingAccumulator back =
      agg::StreamingAccumulator::decode_frame(frame, &fx.geo);
  EXPECT_EQ(back.folded(), 2U);
  ASSERT_EQ(back.acc().size(), acc.acc().size());
  EXPECT_EQ(std::memcmp(back.acc().data(), acc.acc().data(),
                        acc.acc().size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(back.den().data(), acc.den().data(),
                        acc.den().size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(back.buffer_acc().data(), acc.buffer_acc().data(),
                        acc.buffer_acc().size() * sizeof(double)),
            0);
  EXPECT_EQ(back.buffer_den(), acc.buffer_den());
}

TEST(StreamingAccumulatorTest, CorruptedFrameIsRejected) {
  AccFixture fx;
  agg::StreamingAccumulator acc(&fx.geo);
  acc.fold(AccFixture::view(0, fx.make_update(5, true, false)), {1.0, 1.0},
           true);
  std::vector<std::uint8_t> frame = acc.encode_frame();

  std::vector<std::uint8_t> flipped = frame;
  flipped[frame.size() / 2] ^= 0x40;
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(flipped, &fx.geo),
               net::WireError);

  std::vector<std::uint8_t> truncated(frame.begin(), frame.end() - 8);
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(truncated, &fx.geo),
               net::WireError);

  std::vector<std::uint8_t> bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(bad_magic, &fx.geo),
               net::WireError);
}

TEST(StreamingAccumulatorTest, MergeIntoEmptyParentIsBitIdenticalToFold) {
  AccFixture fx;
  const AccFixture::Update a = fx.make_update(6, true, false);
  const AccFixture::Update b = fx.make_update(7, true, false);

  agg::StreamingAccumulator direct(&fx.geo);
  direct.fold(AccFixture::view(0, a), {1.0, 0.5}, true);
  direct.fold(AccFixture::view(1, b), {1.5, 2.0}, true);

  agg::StreamingAccumulator child(&fx.geo);
  child.fold(AccFixture::view(0, a), {1.0, 0.5}, true);
  child.fold(AccFixture::view(1, b), {1.5, 2.0}, true);
  agg::StreamingAccumulator root(&fx.geo);
  root.merge(child);  // 0 + x == x: exact

  std::vector<float> g1(fx.geo.param_count, 0.0F);
  std::vector<float> b1(fx.geo.buffer_count, 0.0F);
  std::vector<float> g2 = g1;
  std::vector<float> b2 = b1;
  direct.finalize(g1, b1);
  root.finalize(g2, b2);
  EXPECT_EQ(std::memcmp(g1.data(), g2.data(), g1.size() * sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(b1.data(), b2.data(), b1.size() * sizeof(float)), 0);
  EXPECT_EQ(root.folded(), 2U);
}

// fold(A ++ B) == merge(fold(A), fold(B)) as mathematical sums; with
// integer-valued inputs the double arithmetic is exact, so the equality is
// bitwise even though the summation order differs.
TEST(StreamingAccumulatorTest, SplitFoldMergesExactlyOnIntegralInputs) {
  AccFixture fx;
  std::vector<AccFixture::Update> updates;
  for (std::uint64_t s = 0; s < 6; ++s) {
    updates.push_back(fx.make_update(20 + s, s % 2 == 0, true));
  }

  agg::StreamingAccumulator flat(&fx.geo);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    flat.fold(AccFixture::view(static_cast<int>(i), updates[i]), {1.0, 2.0},
              true);
  }

  agg::StreamingAccumulator left(&fx.geo);
  agg::StreamingAccumulator right(&fx.geo);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    auto& edge = (i < 3) ? left : right;
    edge.fold(AccFixture::view(static_cast<int>(i), updates[i]), {1.0, 2.0},
              true);
  }
  agg::StreamingAccumulator root(&fx.geo);
  root.merge(left);
  root.merge(right);

  EXPECT_EQ(root.folded(), flat.folded());
  EXPECT_EQ(std::memcmp(root.acc().data(), flat.acc().data(),
                        flat.acc().size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(root.den().data(), flat.den().data(),
                        flat.den().size() * sizeof(double)),
            0);
}

// Weight-carrying renormalization: dropping a child and finalizing equals
// aggregating only the surviving children — no reweighting pass needed.
TEST(StreamingAccumulatorTest, DroppedChildRenormalizesExactly) {
  AccFixture fx;
  const AccFixture::Update a = fx.make_update(30, true, false);
  const AccFixture::Update b = fx.make_update(31, true, false);

  agg::StreamingAccumulator survivor(&fx.geo);
  survivor.fold(AccFixture::view(0, a), {1.0, 0.8}, true);
  agg::StreamingAccumulator late(&fx.geo);
  late.fold(AccFixture::view(1, b), {1.0, 1.2}, true);

  agg::StreamingAccumulator root(&fx.geo);
  root.merge(survivor);  // `late` never arrives

  std::vector<float> got(fx.geo.param_count, -1.0F);
  std::vector<float> gbuf(fx.geo.buffer_count, -1.0F);
  std::vector<float> want = got;
  std::vector<float> wbuf = gbuf;
  root.finalize(got, gbuf);
  survivor.finalize(want, wbuf);
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0);
  EXPECT_EQ(
      std::memcmp(gbuf.data(), wbuf.data(), gbuf.size() * sizeof(float)), 0);
}

// Indices nothing was allowed to write keep their previous values.
TEST(StreamingAccumulatorTest, UntouchedIndicesKeepPreviousValues) {
  AccFixture fx;
  AccFixture::Update u = fx.make_update(40, true, false);
  std::fill(u.mask.begin(), u.mask.end(), std::uint8_t{0});  // nothing trained
  agg::StreamingAccumulator acc(&fx.geo);
  acc.fold(AccFixture::view(0, u), {1.0, 1.0}, true);

  std::vector<float> global(fx.geo.param_count, 7.5F);
  std::vector<float> buffers(fx.geo.buffer_count, 0.0F);
  acc.finalize(global, buffers);
  for (std::size_t f = 0; f < fx.geo.param_count; ++f) {
    if (fx.geo.neuron_owned[f]) {
      EXPECT_EQ(global[f], 7.5F) << "index " << f;
    } else {
      EXPECT_EQ(global[f], u.params[f]) << "index " << f;  // common params
    }
  }
}

// ---- Flat bit-identity, all strategies --------------------------------------

struct Snapshot {
  fl::RunResult result;
  std::vector<float> global;
  std::vector<float> buffers;
};

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const std::string& context) {
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size()) << context;
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    const fl::RoundRecord& ra = a.result.rounds[i];
    const fl::RoundRecord& rb = b.result.rounds[i];
    EXPECT_EQ(ra.virtual_time, rb.virtual_time) << context << " cycle " << i;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << context << " cycle " << i;
    EXPECT_EQ(ra.mean_train_loss, rb.mean_train_loss)
        << context << " cycle " << i;
    EXPECT_EQ(ra.upload_mb, rb.upload_mb) << context << " cycle " << i;
  }
  ASSERT_EQ(a.global.size(), b.global.size()) << context;
  EXPECT_EQ(std::memcmp(a.global.data(), b.global.data(),
                        a.global.size() * sizeof(float)),
            0)
      << context << ": final global parameters differ";
  ASSERT_EQ(a.buffers.size(), b.buffers.size()) << context;
  EXPECT_EQ(std::memcmp(a.buffers.data(), b.buffers.data(),
                        a.buffers.size() * sizeof(float)),
            0)
      << context << ": final global buffers differ";
}

std::unique_ptr<fl::Strategy> make_strategy(const std::string& kind) {
  if (kind == "helios") {
    return std::make_unique<core::HeliosStrategy>(core::HeliosConfig{});
  }
  if (kind == "st_only") {
    core::HeliosConfig cfg;
    cfg.hetero_aggregation = false;
    return std::make_unique<core::HeliosStrategy>(cfg);
  }
  if (kind == "sync") return std::make_unique<fl::SyncFL>();
  if (kind == "async") return std::make_unique<fl::AsyncFL>();
  if (kind == "afo") return std::make_unique<fl::Afo>();
  if (kind == "random") return std::make_unique<fl::RandomSubmodel>();
  if (kind == "static") return std::make_unique<fl::StaticPrune>();
  if (kind == "fedprox") return std::make_unique<fl::FedProx>();
  throw std::invalid_argument("unknown strategy kind " + kind);
}

constexpr int kCycles = 3;

/// edge_nodes == 0 attaches no tree (flat). `ideal_session` additionally
/// routes through the wire-format transport in ideal mode.
Snapshot run_tree(const std::string& kind, int edge_nodes, int fanout,
                  int threads, bool ideal_session = false) {
  util::set_global_threads(threads);
  fl::Fleet fleet = testing::make_fleet();
  agg::TreeTopology topo;
  topo.edge_nodes = edge_nodes;
  topo.fanout = fanout;
  fl::HierarchySession hier(fleet, topo);
  std::optional<fl::NetworkSession> session;
  if (ideal_session) session.emplace(fleet, net::NetworkOptions{});
  auto strategy = make_strategy(kind);
  Snapshot snap;
  snap.result = strategy->run(fleet, kCycles);
  snap.global.assign(fleet.server().global().begin(),
                     fleet.server().global().end());
  snap.buffers.assign(fleet.server().global_buffers().begin(),
                      fleet.server().global_buffers().end());
  return snap;
}

// A single-edge tree (and an inactive topology) must reproduce the flat
// path bit for bit for every strategy, at 1 and 4 threads. For Helios this
// also pins the sharded bookkeeping path: the edge-computed U^ij shards and
// the root's disjoint-union merge must drive rotation, keep-ratios and pace
// adaptation to the identical states, or accuracies diverge.
TEST(HierarchyFlatIdentityTest, SingleEdgeTreeBitIdenticalForAllStrategies) {
  ThreadGuard guard;
  for (const std::string kind : {"helios", "st_only", "sync", "async", "afo",
                                 "random", "static", "fedprox"}) {
    const Snapshot flat = run_tree(kind, /*edge_nodes=*/0, 0, 1);
    const Snapshot inactive = run_tree(kind, /*edge_nodes=*/0, 0, 4);
    expect_identical(flat, inactive, kind + " inactive-topology threads=4");
    for (int threads : {1, 4}) {
      const Snapshot tree = run_tree(kind, /*edge_nodes=*/1, 0, threads);
      expect_identical(flat, tree,
                       kind + " single-edge threads=" + std::to_string(threads));
    }
  }
}

TEST(HierarchyFlatIdentityTest, SingleEdgeIdealNetworkBitIdentical) {
  ThreadGuard guard;
  for (const std::string kind : {"helios", "sync"}) {
    const Snapshot flat = run_tree(kind, 0, 0, 1);
    for (int threads : {1, 4}) {
      const Snapshot tree = run_tree(kind, 1, 0, threads, true);
      expect_identical(flat, tree,
                       kind + " ideal-net single-edge threads=" +
                           std::to_string(threads));
    }
  }
}

// Multi-edge trees reassociate the floating-point sums (each edge folds its
// own devices), so they legitimately differ from flat — but they must be
// bit-identical across thread counts (the fan-out is across edges; each
// edge folds sequentially) and across depths with the same edge partition.
TEST(HierarchyDeterminismTest, MultiEdgeTreeBitIdenticalAcrossThreads) {
  ThreadGuard guard;
  for (const std::string kind : {"helios", "sync"}) {
    const Snapshot seq = run_tree(kind, /*edge_nodes=*/4, /*fanout=*/2, 1);
    const Snapshot par = run_tree(kind, 4, 2, 4);
    expect_identical(seq, par, kind + " depth-3 1-vs-4 threads");
  }
}

// With ideal links, a depth-3 tree merges the same per-edge accumulators as
// the depth-2 tree over the same edge partition — the regional tier is one
// more exact (0 + x) merge layer, so results are bit-identical.
TEST(HierarchyDeterminismTest, RegionalTierIsExactOverSameEdgePartition) {
  ThreadGuard guard;
  const Snapshot depth2 = run_tree("helios", 4, 0, 1);
  const Snapshot depth3 = run_tree("helios", 4, 2, 1);
  expect_identical(depth2, depth3, "depth-2 vs depth-3, 4 edges");
}

// ---- Simulated relay: tier deadlines, loss, exclusion -----------------------

net::NetworkOptions lossless_sim() {
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.latency_s = 0.001;
  return opts;
}

// An edge whose uplink is down all round drops its whole device set; the
// survivors' renormalized aggregate still advances the model, and the tier
// stats surface the lost frames.
TEST(HierarchyRelayTest, DeadEdgeUplinkExcludesItsDevicesAndRecordsLoss) {
  ThreadGuard guard;
  obs::TelemetrySink telemetry;
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&telemetry);
  agg::TreeTopology topo;
  topo.edge_nodes = 2;
  fl::HierarchySession hier(fleet, topo);
  fl::NetworkSession session(fleet, lossless_sim());

  // Edge 1's uplink loses every frame: its merge frame exhausts the retry
  // budget and never reaches the root.
  net::ChannelConfig broken;
  broken.loss_prob = 1.0;
  hier.tree().edge_channel(1).set_config(broken);

  const std::vector<float> before(fleet.server().global());
  fl::SyncFL strategy;
  const fl::RunResult r = strategy.run(fleet, 1);
  ASSERT_EQ(r.rounds.size(), 1U);

  // Edge 0's devices still aggregated: the model moved.
  EXPECT_NE(std::memcmp(before.data(), fleet.server().global().data(),
                        before.size() * sizeof(float)),
            0);
  const obs::TierTotals edge = telemetry.dashboard().tier("edge");
  EXPECT_GT(edge.lost_frames, 0);
  EXPECT_GT(edge.frames_folded, 0);
  EXPECT_GT(telemetry.metrics()
                .counter("helios.agg.frames_lost_total", {{"tier", "edge"}})
                .value(),
            0.0);
  fleet.set_telemetry(nullptr);
}

// Every edge missing the tier deadline closes the round as a clean no-op:
// nothing reaches the root, the global model is untouched.
TEST(HierarchyRelayTest, AllEdgesLateClosesRoundAsNoOp) {
  ThreadGuard guard;
  fl::Fleet fleet = testing::make_fleet();
  agg::TreeTopology topo;
  topo.edge_nodes = 2;
  topo.edge_link.latency_s = 50.0;  // every merge frame is hopelessly late
  topo.edge_deadline_s = 10.0;
  fl::HierarchySession hier(fleet, topo);
  fl::NetworkSession session(fleet, lossless_sim());

  const std::vector<float> before(fleet.server().global());
  const std::vector<float> before_buffers(fleet.server().global_buffers());
  fl::SyncFL strategy;
  const fl::RunResult r = strategy.run(fleet, 1);
  ASSERT_EQ(r.rounds.size(), 1U);
  EXPECT_EQ(std::memcmp(before.data(), fleet.server().global().data(),
                        before.size() * sizeof(float)),
            0)
      << "no merge frame arrived, yet the global model moved";
  EXPECT_EQ(std::memcmp(before_buffers.data(),
                        fleet.server().global_buffers().data(),
                        before_buffers.size() * sizeof(float)),
            0);
  // The round waited out the tier deadline.
  EXPECT_GE(r.rounds[0].virtual_time, topo.edge_deadline_s);
}

// Tier-deadline exclusion composes with exact renormalization: dropping an
// edge via the deadline equals running only the surviving devices, because
// the merge frames carry their weight mass. The ideal-timing variant pins
// the arithmetic claim without channel randomness.
TEST(HierarchyRelayTest, LateEdgeRenormalizesLikeAMissingDeviceSet) {
  ThreadGuard guard;
  // Tree run: edge 1's uplink is far too slow for the tier deadline.
  fl::Fleet tree_fleet = testing::make_fleet();
  agg::TreeTopology topo;
  topo.edge_nodes = 2;
  topo.edge_deadline_s = 10.0;
  fl::HierarchySession hier(tree_fleet, topo);
  fl::NetworkSession tree_session(tree_fleet, lossless_sim());
  net::ChannelConfig slow;
  slow.latency_s = 100.0;
  hier.tree().edge_channel(1).set_config(slow);

  fl::SyncFL tree_strategy;
  tree_strategy.run(tree_fleet, 1);

  // Reference: a single-edge tree over only the devices edge 0 served
  // (ids 0 and 2 under id % 2). Same training, same weights, same fold
  // order — the aggregate must match the excluded-edge run bit for bit.
  fl::Fleet ref_fleet = testing::make_fleet();
  agg::TreeTopology ref_topo;
  ref_topo.edge_nodes = 1;
  fl::HierarchySession ref_hier(ref_fleet, ref_topo);
  // Replicate the training pass on all four devices (identical inputs),
  // but aggregate only edge 0's cohort.
  fl::AggOptions opts;
  std::vector<fl::ClientUpdate> updates;
  const std::vector<float> base(ref_fleet.server().global());
  for (auto& c : ref_fleet.clients()) {
    updates.push_back(c->run_cycle(base, ref_fleet.server().global_buffers(),
                                   {}, 1.0));
  }
  std::vector<fl::ClientUpdate> survivors;
  for (auto& u : updates) {
    if (u.client_id % 2 == 0) survivors.push_back(u);
  }
  ref_fleet.server().aggregate(survivors, opts);

  EXPECT_EQ(std::memcmp(tree_fleet.server().global().data(),
                        ref_fleet.server().global().data(),
                        base.size() * sizeof(float)),
            0)
      << "late-edge exclusion does not equal the surviving device set";
}

// Async completions pay a deterministic per-hop uplink: repeated queries
// agree, depth-3 costs more than depth-2, and an AsyncFL run completes.
TEST(HierarchyRelayTest, AsyncUplinkIsDeterministicAndComposesPerHop) {
  ThreadGuard guard;
  fl::Fleet fleet = testing::make_fleet();
  agg::TreeTopology topo;
  topo.edge_nodes = 4;
  topo.fanout = 2;
  topo.edge_link.latency_s = 0.005;
  topo.regional_link.latency_s = 0.005;
  fl::HierarchySession hier(fleet, topo);
  fl::NetworkSession session(fleet, lossless_sim());

  const double a = hier.async_uplink_seconds(0, 128);
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, hier.async_uplink_seconds(0, 128));

  fl::Fleet fleet2 = testing::make_fleet();
  agg::TreeTopology depth2 = topo;
  depth2.fanout = 0;
  fl::HierarchySession hier2(fleet2, depth2);
  EXPECT_LT(hier2.async_uplink_seconds(0, 128), a);

  fl::AsyncFL strategy;
  const fl::RunResult r = strategy.run(fleet, 2);
  EXPECT_EQ(r.rounds.size(), 2U);
}

// ---- Telemetry / journal ----------------------------------------------------

TEST(HierarchyTelemetryTest, TierMergeMetricsAndJournalRollupsRecorded) {
  ThreadGuard guard;
  obs::TelemetryConfig cfg;
  cfg.tracing = false;
  cfg.journal = true;
  obs::TelemetrySink telemetry(cfg);
  {
    fl::Fleet fleet = testing::make_fleet();
    fleet.set_telemetry(&telemetry);
    agg::TreeTopology topo;
    topo.edge_nodes = 2;
    topo.fanout = 1;  // depth 3: two regionals
    fl::HierarchySession hier(fleet, topo);
    core::HeliosStrategy strategy{core::HeliosConfig{}};
    strategy.run(fleet, 2);

    for (const char* tier : {"edge", "regional", "root"}) {
      EXPECT_GT(telemetry.metrics()
                    .counter("helios.agg.frames_folded_total", {{"tier", tier}})
                    .value(),
                0.0)
          << tier;
    }
    EXPECT_GT(telemetry.metrics()
                  .counter("helios.agg.bytes_forwarded_total",
                           {{"tier", "edge"}})
                  .value(),
              0.0);
    const obs::TierTotals root = telemetry.dashboard().tier("root");
    EXPECT_EQ(root.merges, 2);  // one rollup per round
    fleet.set_telemetry(nullptr);
    telemetry.flush();
  }

  // The journal carries the per-tier merge events; summarize rolls them up.
  std::istringstream is(telemetry.journal_text());
  const obs::JournalSummary summary =
      obs::summarize_journal(obs::read_journal(is));
  ASSERT_EQ(summary.tiers.size(), 3U);
  EXPECT_GT(summary.tiers.at("edge").frames_folded, 0);
  EXPECT_GT(summary.tiers.at("edge").bytes_forwarded, 0);
  EXPECT_EQ(summary.tiers.at("root").merges, 2);
}

// ---- Checkpoint -------------------------------------------------------------

TEST(HierarchyCheckpointTest, ChannelStateRoundTripsAndTopologyIsValidated) {
  ThreadGuard guard;
  const fs::path dir = fs::temp_directory_path() / "helios_agg_ckpt_test";
  fs::create_directories(dir);
  const std::string ckpt = (dir / "ck").string();

  net::NetworkOptions nopts = lossless_sim();
  nopts.channel.jitter_s = 0.01;  // advance channel RNGs
  agg::TreeTopology topo;
  topo.edge_nodes = 2;
  topo.edge_link.jitter_s = 0.01;

  {
    fl::Fleet fleet = testing::make_fleet();
    fl::HierarchySession hier(fleet, topo);
    fleet.register_checkpointable("hierarchy", &hier);
    fl::NetworkSession session(fleet, nopts);
    fl::SyncFL strategy;
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, 2);
    fleet.save_checkpoint(ckpt, &strategy, partial);
  }

  // A mismatched topology is refused with a clear error.
  {
    fl::Fleet fleet = testing::make_fleet();
    agg::TreeTopology other = topo;
    other.edge_nodes = 4;
    fl::HierarchySession hier(fleet, other);
    fleet.register_checkpointable("hierarchy", &hier);
    fl::NetworkSession session(fleet, nopts);
    fl::SyncFL strategy;
    EXPECT_THROW(fleet.resume(ckpt, &strategy), fl::CheckpointError);
  }

  // The matching topology resumes; the relayed channel RNG positions line
  // up so the continued run is bit-identical to the uninterrupted one.
  auto finish = [&](bool resume) {
    fl::Fleet fleet = testing::make_fleet();
    fl::HierarchySession hier(fleet, topo);
    fleet.register_checkpointable("hierarchy", &hier);
    fl::NetworkSession session(fleet, nopts);
    fl::SyncFL strategy;
    fl::RunResult result;
    if (resume) {
      result = fleet.resume(ckpt, &strategy);
      strategy.run_range(fleet, result, 2, 4);
    } else {
      result.method = strategy.name();
      strategy.run_range(fleet, result, 0, 4);
    }
    Snapshot snap;
    snap.result = std::move(result);
    snap.global.assign(fleet.server().global().begin(),
                       fleet.server().global().end());
    snap.buffers.assign(fleet.server().global_buffers().begin(),
                        fleet.server().global_buffers().end());
    return snap;
  };
  const Snapshot golden = finish(false);
  const Snapshot resumed = finish(true);
  expect_identical(golden, resumed, "hierarchy resume");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace helios
