// checkasm_kernels — checkasm/FATE-style verification + bench harness for
// the runtime-dispatched kernel backends (src/tensor/backend).
//
//   checkasm_kernels                  verify every kernel on every available
//                                     backend against the scalar reference
//   checkasm_kernels <kernel>...      verify selected kernels (ctest has one
//                                     target per kernel: checkasm.<kernel>)
//   checkasm_kernels --list           print the kernel names
//   checkasm_kernels --bench [--out <file>]
//                                     cycles/call + GFLOP/s per kernel and
//                                     backend at three shape classes; writes
//                                     BENCH_kernels.json for the perf gate
//
// Verification contract (tensor/backend/kernels.h):
//   * outputs with no active contribution (masked-out rows/cols, frozen
//     optimizer lanes) are bitwise identical to the scalar reference,
//   * the optimizer kernels are bitwise identical everywhere,
//   * FMA matmul outputs obey |diff| <= kFmaUlpTol * eps * sum|a.b| + eps,
//   * within one backend, any chunking of the partition range is bitwise
//     identical to the full-range call (the thread-count determinism
//     contract) — exercised here with randomized split points.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/backend/dispatch.h"
#include "tensor/backend/kernels.h"
#include "tensor/tensor.h"
#include "util/atomic_file.h"
#include "util/rng.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define HELIOS_CHECKASM_RDTSC 1
#endif

namespace {

using helios::tensor::Tensor;
using helios::tensor::backend::AdamArgs;
using helios::tensor::backend::AdamKernelFn;
using helios::tensor::backend::available_tables;
using helios::tensor::backend::Backend;
using helios::tensor::backend::KernelTable;
using helios::tensor::backend::kFmaUlpTol;
using helios::tensor::backend::MatmulArgs;
using helios::tensor::backend::MatmulKernelFn;
using helios::tensor::backend::scalar_kernels;
using helios::tensor::backend::SgdArgs;
using helios::tensor::backend::SgdKernelFn;
using helios::util::Rng;

constexpr double kEps = static_cast<double>(std::numeric_limits<float>::epsilon());

int g_checks = 0;
std::vector<std::string> g_failures;

void record(bool ok, const std::string& what) {
  ++g_checks;
  if (!ok && g_failures.size() < 32) g_failures.push_back(what);
  if (!ok && g_failures.size() == 32) g_failures.push_back("... (truncated)");
}

bool bits_equal(float x, float y) {
  std::uint32_t bx = 0;
  std::uint32_t by = 0;
  std::memcpy(&bx, &x, sizeof(bx));
  std::memcpy(&by, &y, sizeof(by));
  return bx == by;
}

bool row_on(const std::uint8_t* mask, std::int64_t r) {
  return mask == nullptr || mask[r] != 0;
}

// ---------------------------------------------------------------------------
// Masked matmul variants
// ---------------------------------------------------------------------------

// Per-output-element sum of |a * b| over the contraction, honouring the
// mask: the weight in the documented FMA tolerance, and — when zero — the
// marker that the element had no active contribution and must be bitwise
// untouched.
using AbsSumFn = void (*)(const MatmulArgs&, std::vector<double>&);

struct MatmulVariant {
  const char* name;
  MatmulKernelFn KernelTable::*entry;
  bool mask_over_m;  // mask length m (else n)
  bool inner_mask;   // the ops.cpp wrapper precomputes the index list
  bool accumulate;   // C += (random init) vs C = (zero init)
  std::size_t (*a_elems)(int m, int k, int n);
  std::size_t (*b_elems)(int m, int k, int n);
  std::size_t (*c_elems)(int m, int k, int n);
  std::int64_t (*extent)(int m, int k, int n);
  AbsSumFn abs_sums;
};

void abs_rows(const MatmulArgs& t, std::vector<double>& s) {
  for (int i = 0; i < t.m; ++i) {
    if (!row_on(t.mask, i)) continue;
    for (int kk = 0; kk < t.k; ++kk) {
      const double av = std::fabs(t.a[static_cast<std::size_t>(i) * t.k + kk]);
      for (int j = 0; j < t.n; ++j) {
        s[static_cast<std::size_t>(i) * t.n + j] +=
            av * std::fabs(t.b[static_cast<std::size_t>(kk) * t.n + j]);
      }
    }
  }
}

void abs_tn_acc(const MatmulArgs& t, std::vector<double>& s) {
  for (int i = 0; i < t.m; ++i) {
    if (!row_on(t.mask, i)) continue;
    for (int kk = 0; kk < t.k; ++kk) {
      const double av = std::fabs(t.a[static_cast<std::size_t>(i) * t.k + kk]);
      for (int j = 0; j < t.n; ++j) {
        s[static_cast<std::size_t>(kk) * t.n + j] +=
            av * std::fabs(t.b[static_cast<std::size_t>(i) * t.n + j]);
      }
    }
  }
}

void abs_nt_cols(const MatmulArgs& t, std::vector<double>& s) {
  for (int i = 0; i < t.m; ++i) {
    for (int j = 0; j < t.n; ++j) {
      if (!row_on(t.mask, j)) continue;
      double acc = 0.0;
      for (int kk = 0; kk < t.k; ++kk) {
        acc += std::fabs(t.a[static_cast<std::size_t>(i) * t.k + kk]) *
               std::fabs(t.b[static_cast<std::size_t>(j) * t.k + kk]);
      }
      s[static_cast<std::size_t>(i) * t.n + j] = acc;
    }
  }
}

void abs_nn_inner(const MatmulArgs& t, std::vector<double>& s) {
  for (int i = 0; i < t.m; ++i) {
    for (int j = 0; j < t.n; ++j) {
      if (!row_on(t.mask, j)) continue;
      const double av = std::fabs(t.a[static_cast<std::size_t>(i) * t.n + j]);
      for (int kk = 0; kk < t.k; ++kk) {
        s[static_cast<std::size_t>(i) * t.k + kk] +=
            av * std::fabs(t.b[static_cast<std::size_t>(j) * t.k + kk]);
      }
    }
  }
}

void abs_tn_out(const MatmulArgs& t, std::vector<double>& s) {
  for (int j = 0; j < t.n; ++j) {
    if (!row_on(t.mask, j)) continue;
    for (int i = 0; i < t.m; ++i) {
      const double av = std::fabs(t.a[static_cast<std::size_t>(i) * t.n + j]);
      for (int kk = 0; kk < t.k; ++kk) {
        s[static_cast<std::size_t>(j) * t.k + kk] +=
            av * std::fabs(t.b[static_cast<std::size_t>(i) * t.k + kk]);
      }
    }
  }
}

void abs_nt_rows(const MatmulArgs& t, std::vector<double>& s) {
  for (int i = 0; i < t.m; ++i) {
    if (!row_on(t.mask, i)) continue;
    for (int j = 0; j < t.n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < t.k; ++kk) {
        acc += std::fabs(t.a[static_cast<std::size_t>(i) * t.k + kk]) *
               std::fabs(t.b[static_cast<std::size_t>(j) * t.k + kk]);
      }
      s[static_cast<std::size_t>(i) * t.n + j] = acc;
    }
  }
}

std::size_t mk(int m, int k, int) { return static_cast<std::size_t>(m) * k; }
std::size_t kn(int, int k, int n) { return static_cast<std::size_t>(k) * n; }
std::size_t mn(int m, int, int n) { return static_cast<std::size_t>(m) * n; }
std::size_t nk(int, int k, int n) { return static_cast<std::size_t>(n) * k; }
std::int64_t ext_m(int m, int, int) { return m; }
std::int64_t ext_k(int, int k, int) { return k; }
std::int64_t ext_n(int, int, int n) { return n; }

const MatmulVariant kMatmulVariants[] = {
    {"matmul_masked_rows", &KernelTable::matmul_rows,
     /*mask_over_m=*/true, /*inner_mask=*/false, /*accumulate=*/false,
     mk, kn, mn, ext_m, abs_rows},
    {"matmul_tn_acc", &KernelTable::matmul_tn_acc,
     /*mask_over_m=*/true, /*inner_mask=*/true, /*accumulate=*/true,
     mk, mn, kn, ext_k, abs_tn_acc},
    {"matmul_nt_cols", &KernelTable::matmul_nt_cols,
     /*mask_over_m=*/false, /*inner_mask=*/true, /*accumulate=*/false,
     mk, nk, mn, ext_m, abs_nt_cols},
    {"matmul_nn_inner_acc", &KernelTable::matmul_nn_inner_acc,
     /*mask_over_m=*/false, /*inner_mask=*/true, /*accumulate=*/true,
     mn, nk, mk, ext_m, abs_nn_inner},
    {"matmul_tn_out_rows", &KernelTable::matmul_tn_out_rows,
     /*mask_over_m=*/false, /*inner_mask=*/false, /*accumulate=*/false,
     mn, mk, nk, ext_n, abs_tn_out},
    {"matmul_nt_rows_acc", &KernelTable::matmul_nt_rows_acc,
     /*mask_over_m=*/true, /*inner_mask=*/false, /*accumulate=*/true,
     mk, nk, mn, ext_m, abs_nt_rows},
};

enum class MaskKind { kNone, kOnes, kZeros, kSingle, kHalf };
const MaskKind kMaskKinds[] = {MaskKind::kNone, MaskKind::kOnes,
                               MaskKind::kZeros, MaskKind::kSingle,
                               MaskKind::kHalf};

const char* mask_name(MaskKind kind) {
  switch (kind) {
    case MaskKind::kNone: return "none";
    case MaskKind::kOnes: return "ones";
    case MaskKind::kZeros: return "zeros";
    case MaskKind::kSingle: return "single";
    case MaskKind::kHalf: return "half";
  }
  return "?";
}

std::vector<std::uint8_t> make_mask(MaskKind kind, int len, Rng& rng) {
  std::vector<std::uint8_t> mask;
  if (kind == MaskKind::kNone) return mask;
  mask.assign(static_cast<std::size_t>(len), 0);
  switch (kind) {
    case MaskKind::kOnes:
      std::fill(mask.begin(), mask.end(), std::uint8_t{1});
      break;
    case MaskKind::kSingle:
      if (len > 0) mask[rng.uniform_int(static_cast<std::size_t>(len))] = 1;
      break;
    case MaskKind::kHalf:
      for (auto& v : mask) v = rng.uniform(0.0F, 1.0F) < 0.5F ? 1 : 0;
      break;
    default:
      break;
  }
  return mask;
}

std::vector<std::int32_t> pack_active(const std::vector<std::uint8_t>& mask) {
  std::vector<std::int32_t> active;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) active.push_back(static_cast<std::int32_t>(i));
  }
  return active;
}

void fill_uniform(std::vector<float>& v, Rng& rng, float lo = -1.0F,
                  float hi = 1.0F) {
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
}

// Random partition of [0, extent) into 1..4 contiguous chunks.
std::vector<std::int64_t> random_splits(std::int64_t extent, Rng& rng) {
  std::vector<std::int64_t> pts = {0, extent};
  const int cuts = static_cast<int>(rng.uniform_int(4));
  for (int s = 0; s < cuts; ++s) {
    pts.push_back(static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::size_t>(extent) + 1)));
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

struct Shape3 {
  int m, k, n;
};
const Shape3 kVerifyShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {2, 3, 4},    {7, 5, 3},
    {8, 8, 8},   {16, 16, 16}, {17, 31, 13}, {5, 1, 9},
    {24, 150, 33}, {32, 64, 96}, {64, 63, 65}, {96, 37, 49},
};

void verify_matmul(const MatmulVariant& v) {
  std::uint64_t seed = 0x5EED;
  for (const Shape3& sh : kVerifyShapes) {
    for (MaskKind kind : kMaskKinds) {
      Rng rng(seed++);
      const int m = sh.m, k = sh.k, n = sh.n;
      std::vector<float> a(v.a_elems(m, k, n));
      std::vector<float> b(v.b_elems(m, k, n));
      std::vector<float> c_init(v.c_elems(m, k, n), 0.0F);
      fill_uniform(a, rng);
      fill_uniform(b, rng);
      if (v.accumulate) fill_uniform(c_init, rng);
      const int mask_len = v.mask_over_m ? m : n;
      const std::vector<std::uint8_t> mask = make_mask(kind, mask_len, rng);
      const std::vector<std::int32_t> active = pack_active(mask);

      MatmulArgs base;
      base.a = a.data();
      base.b = b.data();
      base.m = m;
      base.k = k;
      base.n = n;
      base.mask = mask.empty() ? nullptr : mask.data();
      const std::int64_t extent = v.extent(m, k, n);

      // Scalar full-range reference.
      std::vector<float> c_ref = c_init;
      MatmulArgs ref_args = base;
      ref_args.c = c_ref.data();
      (scalar_kernels().*(v.entry))(ref_args, 0, extent);

      std::vector<double> sums(c_ref.size(), 0.0);
      v.abs_sums(ref_args, sums);

      for (const KernelTable* table : available_tables()) {
        MatmulArgs args = base;
        if (table->use_index_lists && v.inner_mask && !mask.empty()) {
          args.active = active.data();
          args.n_active = static_cast<std::int32_t>(active.size());
        }
        std::ostringstream ctx;
        ctx << v.name << " [" << table->name << "] m=" << m << " k=" << k
            << " n=" << n << " mask=" << mask_name(kind);

        std::vector<float> c_full = c_init;
        args.c = c_full.data();
        (table->*(v.entry))(args, 0, extent);

        bool ok = true;
        for (std::size_t e = 0; e < c_full.size() && ok; ++e) {
          if (sums[e] == 0.0) {
            // No active contribution: the element must be untouched.
            if (!bits_equal(c_full[e], c_ref[e])) {
              std::ostringstream os;
              os << ctx.str() << ": masked-out elem " << e << " changed: "
                 << c_ref[e] << " -> " << c_full[e];
              record(false, os.str());
              ok = false;
            }
          } else {
            const double diff = std::fabs(static_cast<double>(c_full[e]) -
                                          static_cast<double>(c_ref[e]));
            const double slack = kFmaUlpTol * kEps * sums[e] + kEps;
            if (diff > slack) {
              std::ostringstream os;
              os << ctx.str() << ": elem " << e << " diff " << diff
                 << " > slack " << slack << " (ref " << c_ref[e] << ", got "
                 << c_full[e] << ")";
              record(false, os.str());
              ok = false;
            }
          }
        }
        if (ok) record(true, "");

        // Chunk-split determinism: any partition of the range must
        // reproduce the full-range call bit-for-bit.
        std::vector<float> c_chunk = c_init;
        args.c = c_chunk.data();
        const std::vector<std::int64_t> pts = random_splits(extent, rng);
        for (std::size_t p = 0; p + 1 < pts.size(); ++p) {
          (table->*(v.entry))(args, pts[p], pts[p + 1]);
        }
        const bool same = c_chunk.size() == c_full.size() &&
                          std::memcmp(c_chunk.data(), c_full.data(),
                                      c_full.size() * sizeof(float)) == 0;
        std::ostringstream os;
        os << ctx.str() << ": chunked call differs from full-range call ("
           << pts.size() - 1 << " chunks)";
        record(same, os.str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer kernels (bitwise contract)
// ---------------------------------------------------------------------------

void verify_sgd() {
  std::uint64_t seed = 0xC0FFEE;
  const std::size_t counts[] = {1, 7, 8, 63, 64, 257, 1000};
  for (std::size_t count : counts) {
    for (float momentum : {0.0F, 0.9F}) {
      for (float wd : {0.0F, 0.01F}) {
        for (float clip : {1.0F, 0.37F}) {
          for (bool freeze : {false, true}) {
            Rng rng(seed++);
            std::vector<float> w0(count), g(count), v0(count);
            fill_uniform(w0, rng);
            fill_uniform(g, rng);
            fill_uniform(v0, rng);
            std::vector<std::uint8_t> frozen;
            if (freeze) {
              frozen.resize(count);
              for (auto& f : frozen)
                f = rng.uniform(0.0F, 1.0F) < 0.3F ? 1 : 0;
            }
            const bool use_momentum = momentum > 0.0F;

            auto run = [&](const KernelTable& table, std::vector<float>& w,
                           std::vector<float>& v) {
              SgdArgs args;
              args.w = w.data();
              args.g = g.data();
              args.v = use_momentum ? v.data() : nullptr;
              args.frozen = frozen.empty() ? nullptr : frozen.data();
              args.count = count;
              args.lr = 0.05F;
              args.momentum = momentum;
              args.weight_decay = wd;
              args.clip_scale = clip;
              table.sgd_update(args);
            };

            std::vector<float> w_ref = w0, v_ref = v0;
            run(scalar_kernels(), w_ref, v_ref);
            for (const KernelTable* table : available_tables()) {
              std::vector<float> w = w0, v = v0;
              run(*table, w, v);
              std::ostringstream os;
              os << "sgd_update [" << table->name << "] count=" << count
                 << " mom=" << momentum << " wd=" << wd << " clip=" << clip
                 << " frozen=" << freeze << ": not bitwise identical";
              record(std::memcmp(w.data(), w_ref.data(),
                                 count * sizeof(float)) == 0 &&
                         std::memcmp(v.data(), v_ref.data(),
                                     count * sizeof(float)) == 0,
                     os.str());
            }
          }
        }
      }
    }
  }
}

void verify_adam() {
  std::uint64_t seed = 0xADA;
  const std::size_t counts[] = {1, 7, 8, 63, 64, 257, 1000};
  for (std::size_t count : counts) {
    for (float wd : {0.0F, 0.01F}) {
      for (bool freeze : {false, true}) {
        Rng rng(seed++);
        std::vector<float> w0(count), g(count), m0(count), v0(count);
        fill_uniform(w0, rng);
        fill_uniform(g, rng);
        fill_uniform(m0, rng);
        fill_uniform(v0, rng, 0.0F, 1.0F);  // second moment stays >= 0
        std::vector<std::uint8_t> frozen;
        if (freeze) {
          frozen.resize(count);
          for (auto& f : frozen) f = rng.uniform(0.0F, 1.0F) < 0.3F ? 1 : 0;
        }

        auto run = [&](const KernelTable& table, std::vector<float>& w,
                       std::vector<float>& m, std::vector<float>& v) {
          AdamArgs args;
          args.w = w.data();
          args.g = g.data();
          args.m = m.data();
          args.v = v.data();
          args.frozen = frozen.empty() ? nullptr : frozen.data();
          args.count = count;
          args.lr = 1e-3F;
          args.beta1 = 0.9F;
          args.beta2 = 0.999F;
          args.eps = 1e-8F;
          args.weight_decay = wd;
          args.bc1 = 1.0F - std::pow(0.9F, 3.0F);
          args.bc2 = 1.0F - std::pow(0.999F, 3.0F);
          table.adam_update(args);
        };

        std::vector<float> w_ref = w0, m_ref = m0, v_ref = v0;
        run(scalar_kernels(), w_ref, m_ref, v_ref);
        for (const KernelTable* table : available_tables()) {
          std::vector<float> w = w0, m = m0, v = v0;
          run(*table, w, m, v);
          std::ostringstream os;
          os << "adam_update [" << table->name << "] count=" << count
             << " wd=" << wd << " frozen=" << freeze
             << ": not bitwise identical";
          record(std::memcmp(w.data(), w_ref.data(),
                             count * sizeof(float)) == 0 &&
                     std::memcmp(m.data(), m_ref.data(),
                                 count * sizeof(float)) == 0 &&
                     std::memcmp(v.data(), v_ref.data(),
                                 count * sizeof(float)) == 0,
                 os.str());
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Conv2d end-to-end (im2col + dispatched matmuls through the nn layer)
// ---------------------------------------------------------------------------

struct ConvCase {
  int in_c, in_h, in_w, out_c, kernel, stride, pad;
};
const ConvCase kConvCases[] = {
    {3, 11, 7, 5, 3, 2, 1},   // stride > 1, pad, non-square input
    {1, 8, 8, 4, 1, 1, 0},    // 1x1 kernel
    {2, 9, 9, 6, 3, 3, 0},    // kernel == stride (disjoint patches)
    {4, 6, 10, 8, 5, 1, 2},   // wide pad, non-square
};

struct ConvOutputs {
  Tensor y, dx, dw, db;
};

ConvOutputs run_conv(const ConvCase& cc, Backend id, std::uint64_t seed) {
  helios::tensor::backend::set_kernel_backend(id);
  Rng rng(seed);
  helios::nn::Conv2d layer(cc.in_c, cc.in_h, cc.in_w, cc.out_c, cc.kernel,
                           cc.stride, cc.pad, rng);
  // Mask some filters so the masked matmul paths are on the hot path.
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(cc.out_c), 1);
  for (std::size_t j = 0; j < mask.size(); j += 3) mask[j] = 0;
  layer.set_mask(mask);

  const int batch = 2;
  Tensor x = Tensor::randn({batch, cc.in_c, cc.in_h, cc.in_w}, rng);
  ConvOutputs out;
  out.y = layer.forward(x, /*training=*/true);
  Tensor gy = Tensor::randn(out.y.shape(), rng);
  layer.zero_grad();
  out.dx = layer.backward(gy);
  out.dw = *layer.grads()[0];
  out.db = *layer.grads()[1];
  helios::tensor::backend::clear_kernel_backend_override();
  return out;
}

void compare_tensor(const std::string& ctx, const Tensor& ref,
                    const Tensor& got) {
  if (ref.shape() != got.shape()) {
    record(false, ctx + ": shape mismatch");
    return;
  }
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    const double d = std::fabs(static_cast<double>(ref.flat()[i]) -
                               static_cast<double>(got.flat()[i]));
    const double tol =
        1e-4 * (1.0 + std::fabs(static_cast<double>(ref.flat()[i])));
    if (d > tol) {
      std::ostringstream os;
      os << ctx << ": elem " << i << " ref " << ref.flat()[i] << " got "
         << got.flat()[i];
      record(false, os.str());
      return;
    }
  }
  record(true, "");
}

void verify_conv(bool backward) {
  std::uint64_t seed = 0xC04;
  for (const ConvCase& cc : kConvCases) {
    const ConvOutputs ref = run_conv(cc, Backend::kScalar, seed);
    for (const KernelTable* table : available_tables()) {
      if (table->id == Backend::kScalar) continue;
      const ConvOutputs got = run_conv(cc, table->id, seed);
      std::ostringstream ctx;
      ctx << (backward ? "conv2d_bwd" : "conv2d_fwd") << " [" << table->name
          << "] c=" << cc.in_c << " h=" << cc.in_h << " w=" << cc.in_w
          << " oc=" << cc.out_c << " k=" << cc.kernel << " s=" << cc.stride
          << " p=" << cc.pad;
      if (backward) {
        compare_tensor(ctx.str() + " dx", ref.dx, got.dx);
        compare_tensor(ctx.str() + " dweight", ref.dw, got.dw);
        compare_tensor(ctx.str() + " dbias", ref.db, got.db);
      } else {
        compare_tensor(ctx.str() + " y", ref.y, got.y);
      }
    }
    ++seed;
  }
}

// ---------------------------------------------------------------------------
// Tolerance pin
// ---------------------------------------------------------------------------

void verify_tolerance() {
  // The FMA divergence budget is part of the backend ABI: loosening it
  // silently would let real numeric bugs hide inside "tolerance". Any
  // change must be deliberate (and documented in DESIGN.md).
  record(kFmaUlpTol == 32.0F,
         "kFmaUlpTol changed from the pinned 32.0 — update DESIGN.md, "
         "bench baselines, and this pin deliberately");
}

// ---------------------------------------------------------------------------
// Bench mode (--bench): cycles/call + GFLOP/s, scalar vs vector backends
// ---------------------------------------------------------------------------

struct BenchResult {
  double seconds_per_call = 0.0;
  double cycles_per_call = 0.0;
};

template <typename Fn>
BenchResult run_timed(Fn&& fn, double target_seconds) {
  fn();  // warmup + first-touch
  // Calibrate the repetition count off one timed call.
  auto t0 = std::chrono::steady_clock::now();
  fn();
  double once =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  once = std::max(once, 1e-9);
  const int reps = std::max(1, static_cast<int>(target_seconds / once));

  BenchResult best;
  best.seconds_per_call = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 3; ++trial) {
#if defined(HELIOS_CHECKASM_RDTSC)
    const std::uint64_t c0 = __rdtsc();
#endif
    const auto s0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count() /
        reps;
#if defined(HELIOS_CHECKASM_RDTSC)
    const double cycles = static_cast<double>(__rdtsc() - c0) / reps;
#else
    const double cycles = 0.0;
#endif
    if (secs < best.seconds_per_call) {
      best.seconds_per_call = secs;
      best.cycles_per_call = cycles;
    }
  }
  return best;
}

int run_bench(const std::string& out_path) {
  const char* scale_env = std::getenv("HELIOS_BENCH_SCALE");
  const std::string scale = scale_env != nullptr ? scale_env : "quick";
  const double target = scale == "quick" ? 0.02 : 0.15;

  struct ShapeClass {
    const char* name;
    int m, k, n;
  };
  // LeNet-conv-like, AlexNet-lite-conv-like, and a square compute-bound
  // class; all with a full (all-active) mask so the masked machinery is on
  // the measured path and the FLOP count stays exact.
  const ShapeClass classes[] = {
      {"lenet", 32, 150, 576},
      {"alexnet_lite", 96, 363, 729},
      {"large", 256, 512, 512},
  };

  std::ostringstream cases;
  bool first = true;
  for (const ShapeClass& sc : classes) {
    for (const MatmulVariant& v : kMatmulVariants) {
      Rng rng(42);
      const int m = sc.m, k = sc.k, n = sc.n;
      std::vector<float> a(v.a_elems(m, k, n));
      std::vector<float> b(v.b_elems(m, k, n));
      std::vector<float> c(v.c_elems(m, k, n), 0.0F);
      fill_uniform(a, rng);
      fill_uniform(b, rng);
      const int mask_len = v.mask_over_m ? m : n;
      std::vector<std::uint8_t> mask(static_cast<std::size_t>(mask_len), 1);
      const std::vector<std::int32_t> active = pack_active(mask);
      const std::int64_t extent = v.extent(m, k, n);
      const double flops = 2.0 * m * k * n;

      std::ostringstream line;
      line << "    {\"name\": \"" << v.name << '/' << sc.name
           << "\", \"flops\": " << flops;
      double scalar_gflops = 0.0;
      for (const KernelTable* table : available_tables()) {
        MatmulArgs args;
        args.a = a.data();
        args.b = b.data();
        args.c = c.data();
        args.m = m;
        args.k = k;
        args.n = n;
        args.mask = mask.data();
        if (table->use_index_lists && v.inner_mask) {
          args.active = active.data();
          args.n_active = static_cast<std::int32_t>(active.size());
        }
        MatmulKernelFn fn = table->*(v.entry);
        const BenchResult r =
            run_timed([&] { fn(args, 0, extent); }, target);
        const double gflops = flops / r.seconds_per_call * 1e-9;
        if (table->id == Backend::kScalar) scalar_gflops = gflops;
        line << ", \"" << table->name << "_gflops\": " << gflops << ", \""
             << table->name << "_cycles_per_call\": " << r.cycles_per_call;
        if (table->id != Backend::kScalar && scalar_gflops > 0.0) {
          line << ", \"speedup_" << table->name
               << "_vs_scalar\": " << gflops / scalar_gflops;
        }
      }
      line << "}";
      std::cout << "[checkasm bench] " << v.name << '/' << sc.name << "\n";
      if (!first) cases << ",\n";
      cases << line.str();
      first = false;
    }
  }

  // Optimizer kernels: memory-bound elementwise updates at the same three
  // scales (element counts matching the matmul classes' C matrices).
  const struct {
    const char* cls;
    std::size_t count;
  } opt_classes[] = {
      {"lenet", 18432}, {"alexnet_lite", 69984}, {"large", 262144}};
  for (const auto& oc : opt_classes) {
    Rng rng(43);
    std::vector<float> w(oc.count), g(oc.count), mbuf(oc.count),
        vbuf(oc.count);
    fill_uniform(w, rng);
    fill_uniform(g, rng);
    fill_uniform(mbuf, rng);
    fill_uniform(vbuf, rng, 0.0F, 1.0F);
    for (const char* which : {"sgd_update", "adam_update"}) {
      const bool is_sgd = std::string(which) == "sgd_update";
      const double flops = static_cast<double>(oc.count) * (is_sgd ? 6 : 18);
      std::ostringstream line;
      line << "    {\"name\": \"" << which << '/' << oc.cls
           << "\", \"flops\": " << flops;
      double scalar_gflops = 0.0;
      for (const KernelTable* table : available_tables()) {
        BenchResult r;
        if (is_sgd) {
          SgdArgs args;
          args.w = w.data();
          args.g = g.data();
          args.v = vbuf.data();
          args.count = oc.count;
          args.lr = 1e-4F;
          args.momentum = 0.9F;
          args.weight_decay = 1e-4F;
          SgdKernelFn fn = table->sgd_update;
          r = run_timed([&] { fn(args); }, target);
        } else {
          AdamArgs args;
          args.w = w.data();
          args.g = g.data();
          args.m = mbuf.data();
          args.v = vbuf.data();
          args.count = oc.count;
          args.lr = 1e-4F;
          args.beta1 = 0.9F;
          args.beta2 = 0.999F;
          args.eps = 1e-8F;
          args.bc1 = 0.271F;
          args.bc2 = 0.002997F;
          AdamKernelFn fn = table->adam_update;
          r = run_timed([&] { fn(args); }, target);
        }
        const double gflops = flops / r.seconds_per_call * 1e-9;
        if (table->id == Backend::kScalar) scalar_gflops = gflops;
        line << ", \"" << table->name << "_gflops\": " << gflops << ", \""
             << table->name << "_cycles_per_call\": " << r.cycles_per_call;
        if (table->id != Backend::kScalar && scalar_gflops > 0.0) {
          line << ", \"speedup_" << table->name
               << "_vs_scalar\": " << gflops / scalar_gflops;
        }
      }
      line << "}";
      std::cout << "[checkasm bench] " << which << '/' << oc.cls << "\n";
      cases << ",\n" << line.str();
    }
  }

  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"scale\": \"" << scale << "\",\n"
     << "  \"cases\": [\n" << cases.str() << "\n  ]\n}\n";
  try {
    helios::util::atomic_write_file(out_path, os.str());
  } catch (const std::exception& e) {
    std::cerr << "checkasm: cannot write " << out_path << ": " << e.what()
              << "\n";
    return 1;
  }
  std::cout << "[checkasm bench] wrote " << out_path << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct NamedCheck {
  std::string name;
  void (*run)();
};

void run_conv_fwd() { verify_conv(/*backward=*/false); }
void run_conv_bwd() { verify_conv(/*backward=*/true); }

std::vector<NamedCheck> all_checks() {
  std::vector<NamedCheck> checks;
  for (const MatmulVariant& v : kMatmulVariants) {
    // Captureless dispatch: find the variant again by name at run time.
    checks.push_back({v.name, nullptr});
  }
  checks.push_back({"sgd_update", verify_sgd});
  checks.push_back({"adam_update", verify_adam});
  checks.push_back({"conv2d_fwd", run_conv_fwd});
  checks.push_back({"conv2d_bwd", run_conv_bwd});
  checks.push_back({"tolerance", verify_tolerance});
  return checks;
}

bool run_check(const std::string& name) {
  for (const MatmulVariant& v : kMatmulVariants) {
    if (name == v.name) {
      verify_matmul(v);
      return true;
    }
  }
  for (const NamedCheck& c : all_checks()) {
    if (c.name == name && c.run != nullptr) {
      c.run();
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool bench = false;
  std::string out_path = "BENCH_kernels.json";
  std::vector<std::string> selected;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--bench") {
      bench = true;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--list") {
      for (const NamedCheck& c : all_checks()) std::cout << c.name << "\n";
      return 0;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "usage: checkasm_kernels [--list] [--bench [--out <file>]]"
                << " [kernel...]\n";
      return 2;
    } else {
      selected.push_back(args[i]);
    }
  }

  std::cout << "checkasm: backends:";
  for (const KernelTable* t : available_tables()) std::cout << ' ' << t->name;
  std::cout << "\n";

  if (bench) return run_bench(out_path);

  if (selected.empty()) {
    for (const NamedCheck& c : all_checks()) selected.push_back(c.name);
  }
  for (const std::string& name : selected) {
    const int before = g_checks;
    if (!run_check(name)) {
      std::cerr << "checkasm: unknown kernel '" << name << "'\n";
      return 2;
    }
    std::cout << "checkasm: " << name << ": " << (g_checks - before)
              << " checks\n";
  }

  if (!g_failures.empty()) {
    for (const std::string& f : g_failures) {
      std::cout << "FAILED " << f << "\n";
    }
    std::cout << "checkasm: " << g_failures.size() << " of " << g_checks
              << " checks FAILED\n";
    return 1;
  }
  std::cout << "checkasm: all " << g_checks << " checks passed\n";
  return 0;
}
