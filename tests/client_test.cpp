#include <gtest/gtest.h>

#include "fl/client.h"
#include "fl/submodel.h"
#include "test_support.h"

namespace helios::fl {
namespace {

Client make_client(int id = 0, std::uint64_t seed = 5) {
  ClientConfig cfg;
  cfg.seed = seed;
  cfg.batch_size = 8;
  cfg.lr = 0.05F;
  return Client(id, models::mlp_spec({1, 8, 8, 4}, 16),
                helios::testing::tiny_dataset(40), cfg,
                device::sim_scaled(device::raspberry_pi()));
}

TEST(ClientUpdate, TrainedFraction) {
  ClientUpdate u;
  EXPECT_DOUBLE_EQ(u.trained_fraction(10), 1.0);  // empty = full
  u.trained_mask = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(u.trained_fraction(4), 0.5);
}

TEST(Client, RunCycleReturnsConsistentUpdate) {
  Client c = make_client();
  const std::vector<float> global(c.model().param_count(), 0.0F);
  auto global_init = c.model().params_flat();
  ClientUpdate u = c.run_cycle(global_init, c.model().buffers_flat(), {});
  EXPECT_EQ(u.client_id, 0);
  EXPECT_EQ(u.params.size(), c.model().param_count());
  EXPECT_TRUE(u.trained_mask.empty());
  EXPECT_EQ(u.sample_count, 40u);
  EXPECT_GT(u.train_seconds, 0.0);
  EXPECT_GT(u.upload_seconds, 0.0);
  EXPECT_GT(u.mean_loss, 0.0);
  // Training actually moved the parameters.
  EXPECT_NE(u.params, global_init);
}

TEST(Client, RunCycleStartsFromGlobalParams) {
  Client c = make_client(0, 6);
  // Two cycles from the same global with the same loader state are
  // deterministic only if the start point is the global; check the frozen
  // neurons case: masked params must equal the incoming global exactly.
  auto global = c.model().params_flat();
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(c.model().neuron_total()), 0);
  mask[0] = 1;  // only one neuron trains
  ClientUpdate u = c.run_cycle(global, c.model().buffers_flat(), mask);
  const auto& neurons = c.model().neurons();
  for (std::size_t j = 1; j < neurons.size(); ++j) {
    for (const nn::FlatSlice& s : neurons[j].slices) {
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        EXPECT_EQ(u.params[f], global[f]) << "skipped neuron " << j << " moved";
      }
    }
  }
}

TEST(Client, MaskedCycleIsCheaper) {
  Client c = make_client(0, 7);
  auto global = c.model().params_flat();
  const double full_s = c.estimate_cycle_seconds({});
  util::Rng rng(8);
  auto mask = random_volume_mask(c.model(), 0.25, rng);
  const double masked_s = c.estimate_cycle_seconds(mask);
  EXPECT_LT(masked_s, full_s);
  // Upload shrinks too.
  ClientUpdate full_u = c.run_cycle(global, c.model().buffers_flat(), {});
  ClientUpdate masked_u = c.run_cycle(global, c.model().buffers_flat(), mask);
  EXPECT_LT(masked_u.upload_seconds, full_u.upload_seconds);
  EXPECT_LT(masked_u.train_seconds, full_u.train_seconds);
}

TEST(Client, EstimateLeavesModelUnmasked) {
  Client c = make_client(0, 9);
  util::Rng rng(10);
  auto mask = random_volume_mask(c.model(), 0.5, rng);
  c.estimate_cycle_seconds(mask);
  EXPECT_TRUE(c.model().neuron_mask().empty());
}

TEST(Client, TestbenchScalesWithIterations) {
  Client c = make_client(0, 11);
  const double t5 = c.testbench_seconds(5);
  const double t10 = c.testbench_seconds(10);
  EXPECT_GT(t10, t5);
  EXPECT_THROW(c.testbench_seconds(0), std::invalid_argument);
}

TEST(Client, VolumeValidation) {
  Client c = make_client(0, 12);
  EXPECT_DOUBLE_EQ(c.volume(), 1.0);
  c.set_volume(0.4);
  EXPECT_DOUBLE_EQ(c.volume(), 0.4);
  EXPECT_THROW(c.set_volume(0.0), std::invalid_argument);
  EXPECT_THROW(c.set_volume(1.5), std::invalid_argument);
  EXPECT_FALSE(c.is_straggler());
  c.set_straggler(true);
  EXPECT_TRUE(c.is_straggler());
}

TEST(Client, SlowerProfileTakesLonger) {
  ClientConfig cfg;
  cfg.seed = 13;
  Client fast(0, models::mlp_spec({1, 8, 8, 4}, 16),
              helios::testing::tiny_dataset(40), cfg,
              device::sim_scaled(device::edge_server()));
  Client slow(1, models::mlp_spec({1, 8, 8, 4}, 16),
              helios::testing::tiny_dataset(40), cfg,
              device::sim_scaled(device::deeplens_cpu()));
  EXPECT_LT(fast.estimate_cycle_seconds({}), slow.estimate_cycle_seconds({}));
}

}  // namespace
}  // namespace helios::fl
