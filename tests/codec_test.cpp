// Quantized wire codec subsystem: codec-layer round trips (property-style
// fuzz over shapes, scales and degenerate masks), NaN/Inf rejection, the
// zero-run escape coding's edges, v2 frame truncation/corruption refusal,
// v1 <-> v2 cross-version decoding, the fp32-codec == v1 byte identity the
// default path relies on, quantized merge frames (agg::MergeCodec), and
// fleet-level integration: error-feedback compensation, wire-byte savings
// and thread-count determinism with a quantized payload codec.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "agg/accumulator.h"
#include "codec/codec.h"
#include "codec/error_feedback.h"
#include "core/helios_strategy.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "models/zoo.h"
#include "net/wire.h"
#include "obs/journal_reader.h"
#include "obs/telemetry.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

using codec::CodecId;

// ---- fp16 ------------------------------------------------------------------

TEST(Fp16Test, ExactValuesRoundTrip) {
  const float exact[] = {0.0F, 1.0F, -1.0F, 0.5F, 2.0F, 1024.0F, -65504.0F,
                         0.0009765625F /* 2^-10 */};
  for (float v : exact) {
    EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(v)), v) << v;
  }
}

TEST(Fp16Test, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(1e9F)), 65504.0F);
  EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(-1e9F)), -65504.0F);
  EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(65520.0F)), 65504.0F);
}

TEST(Fp16Test, RoundsToNearestEven) {
  // 2049 sits exactly between representable 2048 and 2050 -> ties to 2048
  // (even significand); 2051 between 2050 and 2052 -> 2052.
  EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(2049.0F)), 2048.0F);
  EXPECT_EQ(codec::fp16_to_float(codec::fp16_from_float(2051.0F)), 2052.0F);
}

TEST(Fp16Test, ConversionIsIdempotent) {
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.normal() * 50.0);
    const float once = codec::fp16_to_float(codec::fp16_from_float(v));
    const float twice = codec::fp16_to_float(codec::fp16_from_float(once));
    EXPECT_EQ(once, twice) << v;
  }
}

// ---- Codec-layer round trips ----------------------------------------------

/// Encode -> decode round trip under `id`; checks the payload size
/// prediction, the decode, and the sender-side dequantized mirror.
void expect_codec_roundtrip(CodecId id, const std::vector<float>& values,
                            const std::vector<std::uint32_t>& groups,
                            std::size_t group_count) {
  const codec::QuantPlan plan =
      codec::plan_quantization(id, values, groups, group_count);
  std::vector<std::uint8_t> payload;
  const std::size_t n = codec::encode_values(plan, values, groups, payload);
  ASSERT_EQ(n, payload.size());
  EXPECT_EQ(n, codec::payload_bytes(plan, values, groups));

  const std::vector<float> decoded =
      codec::decode_values(plan, payload, groups, values.size());
  const std::vector<float> mirror =
      codec::dequantized_values(plan, values, groups);
  ASSERT_EQ(decoded.size(), values.size());
  ASSERT_EQ(mirror.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i], mirror[i]) << "sender/receiver mismatch at " << i;
    // Quantization error bound: half a grid step (int8), or fp16 relative
    // precision; fp32 is exact.
    if (id == CodecId::kFp32) {
      EXPECT_EQ(decoded[i], values[i]);
    } else if (id == CodecId::kFp16) {
      // Relative fp16 precision, after the documented saturation clamp.
      const float sat = std::clamp(values[i], -65504.0F, 65504.0F);
      EXPECT_NEAR(decoded[i], sat, std::abs(sat) * 1e-3 + 1e-4);
    } else {
      // Half a grid step; the absolute term covers groups whose fp16 scale
      // underflowed to 0 (max |v| < 127 * fp16-min, everything -> q = 0).
      const float s = plan.scale(groups.empty() ? 0 : groups[i]);
      EXPECT_NEAR(decoded[i], values[i], s * 0.5F + 4e-6F) << "index " << i;
    }
  }
}

std::vector<std::uint32_t> random_groups(std::size_t count,
                                         std::size_t group_count,
                                         util::Rng& rng) {
  std::vector<std::uint32_t> g(count);
  for (auto& x : g) {
    x = static_cast<std::uint32_t>(
        rng.uniform_int(static_cast<int>(group_count)));
  }
  return g;
}

TEST(CodecTest, FuzzRoundTripsAcrossShapesAndScales) {
  util::Rng rng(41);
  const CodecId ids[] = {CodecId::kFp32, CodecId::kFp16,
                         CodecId::kInt8PerTensor, CodecId::kInt8PerNeuron};
  const std::size_t sizes[] = {1, 2, 7, 64, 257, 1000};
  const double scales[] = {1e-6, 0.01, 1.0, 100.0, 30000.0};
  for (CodecId id : ids) {
    for (std::size_t n : sizes) {
      for (double sc : scales) {
        std::vector<float> values(n);
        for (auto& v : values) v = static_cast<float>(rng.normal() * sc);
        // Sprinkle exact zeros to exercise the run coding.
        for (auto& v : values) {
          if (rng.uniform() < 0.3) v = 0.0F;
        }
        const std::size_t group_count =
            id == CodecId::kInt8PerNeuron ? 1 + n / 7 : 1;
        const std::vector<std::uint32_t> groups =
            id == CodecId::kInt8PerNeuron
                ? random_groups(n, group_count, rng)
                : std::vector<std::uint32_t>{};
        expect_codec_roundtrip(id, values, groups, group_count);
      }
    }
  }
}

TEST(CodecTest, AllZeroStreamCompressesAndRoundTrips) {
  const std::vector<float> zeros(500, 0.0F);
  const codec::QuantPlan plan =
      codec::plan_quantization(CodecId::kInt8PerTensor, zeros, {}, 1);
  std::vector<std::uint8_t> payload;
  codec::encode_values(plan, zeros, {}, payload);
  // 500 zeros -> two escape+length pairs (runs cap at 255).
  EXPECT_LE(payload.size(), 4U);
  const std::vector<float> decoded =
      codec::decode_values(plan, payload, {}, zeros.size());
  for (float v : decoded) EXPECT_EQ(v, 0.0F);
}

TEST(CodecTest, ShortZeroRunsAreNotEscaped) {
  // Runs of 1-2 zeros stay literal bytes; the payload never expands.
  const std::vector<float> values = {1.0F, 0.0F, 0.0F, 1.0F, 0.0F, 1.0F};
  const codec::QuantPlan plan =
      codec::plan_quantization(CodecId::kInt8PerTensor, values, {}, 1);
  std::vector<std::uint8_t> payload;
  codec::encode_values(plan, values, {}, payload);
  EXPECT_EQ(payload.size(), values.size());
  const std::vector<float> decoded =
      codec::decode_values(plan, payload, {}, values.size());
  EXPECT_EQ(decoded[1], 0.0F);
  EXPECT_EQ(decoded[4], 0.0F);
}

TEST(CodecTest, NeverExpandsBeyondOneBytePerValue) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> values(256);
    for (auto& v : values) {
      v = rng.uniform() < 0.5 ? 0.0F : static_cast<float>(rng.normal());
    }
    const codec::QuantPlan plan =
        codec::plan_quantization(CodecId::kInt8PerTensor, values, {}, 1);
    std::vector<std::uint8_t> payload;
    codec::encode_values(plan, values, {}, payload);
    EXPECT_LE(payload.size(), values.size());
  }
}

TEST(CodecTest, RejectsNaNAndInf) {
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    std::vector<float> values = {1.0F, bad, 2.0F};
    EXPECT_THROW(
        codec::plan_quantization(CodecId::kInt8PerTensor, values, {}, 1),
        codec::CodecError);
    EXPECT_THROW(codec::plan_quantization(CodecId::kFp16, values, {}, 1),
                 codec::CodecError);
  }
}

TEST(CodecTest, DecodeRejectsTruncatedAndOversizedPayloads) {
  util::Rng rng(23);
  std::vector<float> values(64);
  for (auto& v : values) v = static_cast<float>(rng.normal());
  const codec::QuantPlan plan =
      codec::plan_quantization(CodecId::kInt8PerTensor, values, {}, 1);
  std::vector<std::uint8_t> payload;
  codec::encode_values(plan, values, {}, payload);

  std::vector<std::uint8_t> shorter(payload.begin(), payload.end() - 1);
  EXPECT_THROW(codec::decode_values(plan, shorter, {}, values.size()),
               codec::CodecError);
  std::vector<std::uint8_t> longer = payload;
  longer.push_back(0x00);
  EXPECT_THROW(codec::decode_values(plan, longer, {}, values.size()),
               codec::CodecError);
}

TEST(CodecTest, DecodeRejectsCorruptZeroRun) {
  // An escape byte announcing a run that overruns the value count.
  const codec::QuantPlan plan =
      codec::plan_quantization(CodecId::kInt8PerTensor,
                               std::vector<float>{1.0F}, {}, 1);
  const std::vector<std::uint8_t> bogus = {0x80, 0xFF};
  EXPECT_THROW(codec::decode_values(plan, bogus, {}, 4), codec::CodecError);
  // A run length below the escape threshold is malformed by construction.
  const std::vector<std::uint8_t> tiny_run = {0x80, 0x02, 0x01, 0x01};
  EXPECT_THROW(codec::decode_values(plan, tiny_run, {}, 4),
               codec::CodecError);
}

TEST(CodecTest, RegistryNamesAndIds) {
  EXPECT_EQ(codec::codec_from_name("fp32"), CodecId::kFp32);
  EXPECT_EQ(codec::codec_from_name("fp16"), CodecId::kFp16);
  EXPECT_EQ(codec::codec_from_name("int8"), CodecId::kInt8PerTensor);
  EXPECT_EQ(codec::codec_from_name("int8pn"), CodecId::kInt8PerNeuron);
  EXPECT_EQ(codec::codec_from_name("auto"), CodecId::kAuto);
  EXPECT_THROW(codec::codec_from_name("lz4"), codec::CodecError);
  EXPECT_TRUE(codec::codec_known(0));
  EXPECT_TRUE(codec::codec_known(3));
  EXPECT_FALSE(codec::codec_known(4));
  EXPECT_FALSE(codec::codec_known(0xFFFFFFFFU));
  EXPECT_THROW(codec::codec_info(CodecId::kAuto), codec::CodecError);
}

// ---- Error-feedback accumulators ------------------------------------------

TEST(ErrorFeedbackTest, ResidualsAreLazilyZeroInitialized) {
  codec::ErrorFeedback ef;
  EXPECT_TRUE(ef.empty());
  EXPECT_EQ(ef.find(7), nullptr);
  std::vector<float>& r = ef.residual(7, 16);
  ASSERT_EQ(r.size(), 16U);
  for (float v : r) EXPECT_EQ(v, 0.0F);
  EXPECT_FALSE(ef.empty());
  EXPECT_NE(ef.find(7), nullptr);
  EXPECT_EQ(ef.l2_norm(3), 0.0);
}

TEST(ErrorFeedbackTest, NormAndClearAndAssign) {
  codec::ErrorFeedback ef;
  ef.assign(2, {3.0F, 4.0F});
  EXPECT_DOUBLE_EQ(ef.l2_norm(2), 5.0);
  EXPECT_THROW(ef.residual(2, 3), codec::CodecError);  // length mismatch
  ef.clear();
  EXPECT_TRUE(ef.empty());
}

// ---- v2 wire frames --------------------------------------------------------

struct QuantWireFixture {
  nn::Model model;
  net::WireLayout layout;
  std::vector<float> base;
  std::vector<float> params;
  std::vector<float> buffers;

  explicit QuantWireFixture(std::uint64_t seed = 3)
      : model(models::mlp_spec({1, 8, 8, 4}, 24).build(seed)),
        layout(net::make_wire_layout(model)) {
    util::Rng rng(seed * 31 + 7);
    base.resize(layout.param_count);
    params.resize(layout.param_count);
    buffers.resize(layout.buffer_count);
    for (float& v : base) v = static_cast<float>(rng.normal());
    // Updates are small deltas off the base — the wire's delta coding and
    // the sparse candidate both key off this shape.
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] = base[i] + static_cast<float>(rng.normal() * 0.05);
    }
    for (float& v : buffers) v = static_cast<float>(rng.normal());
  }

  net::WireMessage message(std::span<const std::uint8_t> mask) const {
    net::WireMessage m;
    m.client_id = 42;
    m.sample_count = 1234;
    m.mean_loss = 0.625;
    m.params = params;
    m.buffers = buffers;
    m.neuron_mask = mask;
    return m;
  }

  void freeze_unmasked(std::span<const std::uint8_t> mask) {
    if (mask.empty()) return;
    for (std::size_t f = 0; f < layout.param_count; ++f) {
      const std::uint32_t n = layout.neuron_of[f];
      if (n != net::WireLayout::kCommonParam && mask[n] == 0) {
        params[f] = base[f];
      }
    }
  }
};

/// Decodes `frame` and checks it reconstructs exactly the encoder-predicted
/// view (CodecResult.dequantized), with unshipped entries at the base.
void expect_quant_roundtrip(const QuantWireFixture& fx,
                            std::span<const std::uint8_t> mask,
                            const std::vector<std::uint8_t>& frame,
                            const net::CodecResult& result) {
  const net::DecodedMessage d = net::decode_frame(frame, fx.layout, fx.base);
  EXPECT_EQ(d.client_id, 42);
  EXPECT_EQ(d.sample_count, 1234U);
  ASSERT_EQ(d.params.size(), fx.layout.param_count);
  if (result.codec == CodecId::kFp32) {
    EXPECT_EQ(std::memcmp(d.params.data(), fx.params.data(),
                          fx.params.size() * sizeof(float)),
              0);
  } else {
    ASSERT_EQ(result.dequantized.size(), fx.layout.param_count);
    EXPECT_EQ(std::memcmp(d.params.data(), result.dequantized.data(),
                          d.params.size() * sizeof(float)),
              0)
        << "decoder disagrees with the encoder's dequantized mirror";
    // Shipped entries land within the quantization error of the true value;
    // unshipped entries are exactly the base.
    for (std::size_t f = 0; f < fx.layout.param_count; ++f) {
      const std::uint32_t n = fx.layout.neuron_of[f];
      const bool shipped = mask.empty() ||
                           n == net::WireLayout::kCommonParam || mask[n] != 0;
      if (!shipped) {
        EXPECT_EQ(d.params[f], fx.base[f]) << "index " << f;
      }
    }
  }
  // Buffers are never quantized.
  if (!fx.buffers.empty()) {
    EXPECT_EQ(std::memcmp(d.buffers.data(), fx.buffers.data(),
                          fx.buffers.size() * sizeof(float)),
              0);
  }
}

TEST(QuantWireTest, Fp32CodecIsByteIdenticalToV1) {
  QuantWireFixture fx;
  util::Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::uint8_t> mask(
        static_cast<std::size_t>(fx.layout.neuron_total));
    for (auto& b : mask) b = rng.uniform() < 0.5 ? 1 : 0;
    fx.freeze_unmasked(mask);
    const auto v1 = net::encode_frame_auto(fx.message(mask), fx.base,
                                           fx.layout);
    net::CodecResult result;
    const auto v2 = net::encode_frame_auto(fx.message(mask), fx.base,
                                           fx.layout, CodecId::kFp32,
                                           &result);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(result.codec, CodecId::kFp32);
    // Dense overload too.
    const auto d1 = net::encode_frame(fx.message(mask), fx.layout);
    const auto d2 = net::encode_frame(fx.message(mask), fx.layout,
                                      CodecId::kFp32, nullptr);
    EXPECT_EQ(d1, d2);
  }
}

TEST(QuantWireTest, QuantizedRoundTripsAcrossCodecsAndMasks) {
  QuantWireFixture fx;
  util::Rng rng(11);
  const CodecId ids[] = {CodecId::kFp16, CodecId::kInt8PerTensor,
                         CodecId::kInt8PerNeuron, CodecId::kAuto};
  for (CodecId id : ids) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<std::uint8_t> mask(
          static_cast<std::size_t>(fx.layout.neuron_total));
      for (auto& b : mask) b = rng.uniform() < 0.6 ? 1 : 0;
      fx.freeze_unmasked(mask);
      net::CodecResult result;
      const auto frame = net::encode_frame_auto(fx.message(mask), fx.base,
                                                fx.layout, id, &result);
      expect_quant_roundtrip(fx, mask, frame, result);
    }
  }
}

TEST(QuantWireTest, DegenerateMasksRoundTrip) {
  QuantWireFixture fx;
  const auto m = static_cast<std::size_t>(fx.layout.neuron_total);
  // All-zero mask: only common parameters ship.
  std::vector<std::uint8_t> none(m, 0);
  fx.freeze_unmasked(none);
  net::CodecResult result;
  auto frame = net::encode_frame_auto(fx.message(none), fx.base, fx.layout,
                                      CodecId::kInt8PerNeuron, &result);
  expect_quant_roundtrip(fx, none, frame, result);

  // Single-neuron mask.
  QuantWireFixture fx2(9);
  std::vector<std::uint8_t> one(m, 0);
  one[m / 2] = 1;
  fx2.freeze_unmasked(one);
  frame = net::encode_frame_auto(fx2.message(one), fx2.base, fx2.layout,
                                 CodecId::kInt8PerNeuron, &result);
  expect_quant_roundtrip(fx2, one, frame, result);

  // Full mask (all ones) == effectively dense.
  QuantWireFixture fx3(13);
  std::vector<std::uint8_t> all(m, 1);
  frame = net::encode_frame_auto(fx3.message(all), fx3.base, fx3.layout,
                                 CodecId::kInt8PerTensor, &result);
  expect_quant_roundtrip(fx3, all, frame, result);
}

TEST(QuantWireTest, NoBaseDenseEncodingRoundTrips) {
  // encode_frame (no base snapshot): values ship absolute, not delta-coded.
  QuantWireFixture fx;
  net::CodecResult result;
  const auto frame = net::encode_frame(fx.message({}), fx.layout,
                                       CodecId::kInt8PerTensor, &result);
  const net::DecodedMessage d = net::decode_frame(frame, fx.layout, {});
  ASSERT_EQ(result.dequantized.size(), fx.layout.param_count);
  EXPECT_EQ(std::memcmp(d.params.data(), result.dequantized.data(),
                        d.params.size() * sizeof(float)),
            0);
}

TEST(QuantWireTest, QuantizedFramesAreSmaller) {
  QuantWireFixture fx;
  const auto v1 = net::encode_frame_auto(fx.message({}), fx.base, fx.layout);
  net::CodecResult result;
  const auto int8 = net::encode_frame_auto(fx.message({}), fx.base,
                                           fx.layout, CodecId::kInt8PerNeuron,
                                           &result);
  const auto fp16 = net::encode_frame_auto(fx.message({}), fx.base,
                                           fx.layout, CodecId::kFp16,
                                           nullptr);
  EXPECT_LT(fp16.size(), v1.size());
  EXPECT_LT(int8.size(), fp16.size());
  const auto autof = net::encode_frame_auto(fx.message({}), fx.base,
                                            fx.layout, CodecId::kAuto,
                                            nullptr);
  EXPECT_LE(autof.size(), int8.size());
}

TEST(QuantWireTest, RejectsNonFinitePayloads) {
  QuantWireFixture fx;
  fx.params[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(net::encode_frame_auto(fx.message({}), fx.base, fx.layout,
                                      CodecId::kInt8PerTensor, nullptr),
               codec::CodecError);
}

TEST(QuantWireTest, TruncationAndCorruptionAreRejected) {
  QuantWireFixture fx;
  net::CodecResult result;
  const auto frame = net::encode_frame_auto(fx.message({}), fx.base,
                                            fx.layout, CodecId::kInt8PerNeuron,
                                            &result);
  // Every truncation point fails.
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, std::size_t{63},
                          frame.size() / 2, frame.size() - 1}) {
    std::vector<std::uint8_t> t(frame.begin(),
                                frame.begin() + static_cast<long>(cut));
    EXPECT_THROW(net::decode_frame(t, fx.layout, fx.base), net::WireError)
        << "cut at " << cut;
  }
  // Any single flipped byte fails (CRC, or a validated field).
  util::Rng rng(31);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> c = frame;
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(c.size())));
    c[at] ^= 0x5A;
    EXPECT_THROW(net::decode_frame(c, fx.layout, fx.base), net::WireError)
        << "flip at " << at;
  }
  // Extra trailing bytes fail the exact-length check.
  std::vector<std::uint8_t> longer = frame;
  longer.push_back(0);
  EXPECT_THROW(net::decode_frame(longer, fx.layout, fx.base),
               net::WireError);
}

TEST(QuantWireTest, CrossVersionRules) {
  QuantWireFixture fx;
  // A v1 frame decodes through the same decoder (cross-version read).
  const auto v1 = net::encode_frame_auto(fx.message({}), fx.base, fx.layout);
  EXPECT_EQ(v1[4], 1);  // version byte
  EXPECT_NO_THROW(net::decode_frame(v1, fx.layout, fx.base));

  // A v2 frame announces version 2 and decodes too.
  net::CodecResult result;
  auto v2 = net::encode_frame_auto(fx.message({}), fx.base, fx.layout,
                                   CodecId::kInt8PerTensor, &result);
  EXPECT_EQ(v2[4], 2);
  EXPECT_NO_THROW(net::decode_frame(v2, fx.layout, fx.base));

  // An unknown version is refused even with a valid CRC.
  auto unk = v1;
  unk[4] = 3;
  const std::uint32_t crc = net::crc32(
      std::span<const std::uint8_t>(unk.data(), unk.size() - 4));
  std::memcpy(unk.data() + unk.size() - 4, &crc, 4);
  EXPECT_THROW(net::decode_frame(unk, fx.layout, fx.base), net::WireError);

  // A v2 frame claiming the fp32 codec is malformed (fp32 must ship as v1).
  auto bad = v2;
  const std::uint32_t fp32_id = 0;
  std::memcpy(bad.data() + 56, &fp32_id, 4);
  const std::uint32_t crc2 = net::crc32(
      std::span<const std::uint8_t>(bad.data(), bad.size() - 4));
  std::memcpy(bad.data() + bad.size() - 4, &crc2, 4);
  EXPECT_THROW(net::decode_frame(bad, fx.layout, fx.base), net::WireError);

  // An unknown codec id is refused.
  auto badc = v2;
  const std::uint32_t codec_id = 9;
  std::memcpy(badc.data() + 56, &codec_id, 4);
  const std::uint32_t crc3 = net::crc32(
      std::span<const std::uint8_t>(badc.data(), badc.size() - 4));
  std::memcpy(badc.data() + badc.size() - 4, &crc3, 4);
  EXPECT_THROW(net::decode_frame(badc, fx.layout, fx.base), net::WireError);

  // A v1 frame carrying the v2-only delta flag is refused.
  auto badf = v1;
  badf[6] |= 0x04;  // kFlagDelta
  const std::uint32_t crc4 = net::crc32(
      std::span<const std::uint8_t>(badf.data(), badf.size() - 4));
  std::memcpy(badf.data() + badf.size() - 4, &crc4, 4);
  EXPECT_THROW(net::decode_frame(badf, fx.layout, fx.base), net::WireError);
}

// ---- Quantized merge frames (agg tier uplinks) ------------------------------

TEST(MergeCodecTest, QuantizedMergeFramesRoundTrip) {
  nn::Model model = models::mlp_spec({1, 8, 8, 4}, 24).build(3);
  const agg::ModelGeometry geo = agg::make_geometry(model);
  util::Rng rng(19);
  agg::StreamingAccumulator acc(&geo);
  std::vector<float> params(geo.param_count);
  std::vector<float> buffers(geo.buffer_count);
  for (auto& v : params) v = static_cast<float>(rng.normal());
  for (auto& v : buffers) v = static_cast<float>(rng.normal());
  acc.fold({0, params, buffers, {}}, {1.0, 0.7}, true);

  // kF64 is bit-exact; kF32/kF16 are close and strictly smaller.
  const auto f64 = acc.encode_frame(agg::MergeCodec::kF64);
  const auto f32 = acc.encode_frame(agg::MergeCodec::kF32);
  const auto f16 = acc.encode_frame(agg::MergeCodec::kF16);
  EXPECT_EQ(f64.size(),
            agg::StreamingAccumulator::frame_bytes(geo, agg::MergeCodec::kF64));
  EXPECT_EQ(f32.size(),
            agg::StreamingAccumulator::frame_bytes(geo, agg::MergeCodec::kF32));
  EXPECT_EQ(f16.size(),
            agg::StreamingAccumulator::frame_bytes(geo, agg::MergeCodec::kF16));
  EXPECT_LT(f32.size(), f64.size());
  EXPECT_LT(f16.size(), f32.size());

  const auto d64 = agg::StreamingAccumulator::decode_frame(f64, &geo);
  EXPECT_EQ(d64.acc(), acc.acc());
  EXPECT_EQ(d64.den(), acc.den());
  EXPECT_EQ(d64.buffer_den(), acc.buffer_den());

  for (const auto* frame : {&f32, &f16}) {
    const auto d = agg::StreamingAccumulator::decode_frame(*frame, &geo);
    ASSERT_EQ(d.acc().size(), acc.acc().size());
    EXPECT_EQ(d.folded(), acc.folded());
    double max_rel = 0.0;
    for (std::size_t i = 0; i < acc.acc().size(); ++i) {
      const double denom = std::max(1e-3, std::abs(acc.acc()[i]));
      max_rel = std::max(max_rel, std::abs(d.acc()[i] - acc.acc()[i]) / denom);
    }
    EXPECT_LT(max_rel, frame == &f32 ? 1e-6 : 2e-3);
    EXPECT_NEAR(d.buffer_den(), acc.buffer_den(),
                std::abs(acc.buffer_den()) * 2e-3);
  }
}

TEST(MergeCodecTest, RejectsUnknownCodecAndCorruption) {
  nn::Model model = models::mlp_spec({1, 8, 8, 4}, 24).build(3);
  const agg::ModelGeometry geo = agg::make_geometry(model);
  agg::StreamingAccumulator acc(&geo);
  std::vector<float> params(geo.param_count, 0.5F);
  std::vector<float> buffers(geo.buffer_count, 0.25F);
  acc.fold({0, params, buffers, {}}, {1.0, 1.0}, false);

  EXPECT_TRUE(agg::merge_codec_known(0));
  EXPECT_TRUE(agg::merge_codec_known(2));
  EXPECT_FALSE(agg::merge_codec_known(3));

  auto frame = acc.encode_frame(agg::MergeCodec::kF16);
  auto bad = frame;
  bad[4] = 7;  // unknown codec id
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(bad, &geo),
               std::runtime_error);
  auto flipped = frame;
  flipped[frame.size() / 2] ^= 0x40;
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(flipped, &geo),
               std::runtime_error);
  std::vector<std::uint8_t> shorter(frame.begin(), frame.end() - 8);
  EXPECT_THROW(agg::StreamingAccumulator::decode_frame(shorter, &geo),
               std::runtime_error);
}

// ---- Fleet-level integration -----------------------------------------------

struct CodecRun {
  double accuracy = 0.0;
  double wire_bytes = 0.0;
  std::vector<float> global;
};

CodecRun run_with_codec(CodecId codec, bool error_feedback, int threads,
                        int cycles = 3) {
  util::set_global_threads(threads);
  obs::TelemetrySink telemetry;
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&telemetry);
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.payload_codec = codec;
  opts.error_feedback = error_feedback;
  fl::NetworkSession session(fleet, opts);
  const fl::RunResult r = fl::SyncFL().run(fleet, cycles);
  CodecRun out;
  out.accuracy = r.rounds.back().test_accuracy;
  out.wire_bytes =
      telemetry.metrics().counter("helios.net.round_bytes_on_wire_total")
          .value();
  out.global.assign(fleet.server().global().begin(),
                    fleet.server().global().end());
  fleet.set_telemetry(nullptr);
  util::set_global_threads(0);
  return out;
}

TEST(CodecFleetTest, QuantizedUploadsShrinkWireBytesAndPreserveAccuracy) {
  const CodecRun fp32 = run_with_codec(CodecId::kFp32, false, 1);
  const CodecRun int8 = run_with_codec(CodecId::kInt8PerNeuron, true, 1);
  ASSERT_GT(fp32.wire_bytes, 0.0);
  ASSERT_GT(int8.wire_bytes, 0.0);
  // The tentpole target: >= 4x wire reduction (the int8 payload plus fp16
  // scales against fp32 dense) ...
  EXPECT_GE(fp32.wire_bytes / int8.wire_bytes, 3.5);
  // ... at a small accuracy cost on this toy federation.
  EXPECT_NEAR(int8.accuracy, fp32.accuracy, 0.10);
}

TEST(CodecFleetTest, QuantizedRunsAreThreadCountDeterministic) {
  const CodecRun t1 = run_with_codec(CodecId::kInt8PerNeuron, true, 1);
  const CodecRun t4 = run_with_codec(CodecId::kInt8PerNeuron, true, 4);
  ASSERT_EQ(t1.global.size(), t4.global.size());
  EXPECT_EQ(std::memcmp(t1.global.data(), t4.global.data(),
                        t1.global.size() * sizeof(float)),
            0);
  EXPECT_EQ(t1.wire_bytes, t4.wire_bytes);
  EXPECT_EQ(t1.accuracy, t4.accuracy);
}

TEST(CodecFleetTest, ErrorFeedbackCarriesResidualsAcrossRounds) {
  obs::TelemetrySink telemetry;
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&telemetry);
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.payload_codec = CodecId::kInt8PerNeuron;
  opts.error_feedback = true;
  fl::NetworkSession session(fleet, opts);
  fl::SyncFL().run(fleet, 2);
  // Every participating client holds a residual bank entry, and quantized
  // rounds leave non-zero residuals behind.
  EXPECT_FALSE(session.feedback().empty());
  double total = 0.0;
  for (const auto& [id, residual] : session.feedback().all()) {
    total += session.feedback().l2_norm(id);
  }
  EXPECT_GT(total, 0.0);
  // Telemetry saw the codec at work (counters are per-device labeled).
  double bytes_in = 0.0, bytes_out = 0.0;
  for (std::size_t id = 0; id < fleet.size(); ++id) {
    const obs::LabelSet labels{{"device", std::to_string(id)}};
    bytes_in += telemetry.metrics()
                    .counter("helios.codec.bytes_in_total", labels)
                    .value();
    bytes_out += telemetry.metrics()
                     .counter("helios.codec.bytes_out_total", labels)
                     .value();
  }
  EXPECT_GT(bytes_in, 0.0);
  EXPECT_GT(bytes_in, bytes_out);
  fleet.set_telemetry(nullptr);
}

TEST(CodecFleetTest, JournalSummarizesAndReplaysCodecEvents) {
  obs::TelemetryConfig cfg;
  cfg.tracing = false;
  cfg.journal = true;
  obs::TelemetrySink sink(cfg);
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&sink);
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.payload_codec = CodecId::kInt8PerNeuron;
  opts.error_feedback = true;
  fl::NetworkSession session(fleet, opts);
  fl::SyncFL().run(fleet, 2);
  fleet.set_telemetry(nullptr);
  sink.flush();
  std::ostringstream live;
  sink.render_dashboard(live);

  std::istringstream is(sink.journal_text());
  const std::vector<obs::JournalEvent> events = obs::read_journal(is);
  const obs::JournalSummary s = obs::summarize_journal(events);
  // The codec rollup: a quantized run's encoded bytes are a strict subset
  // of their fp32-dense cost, fleet-wide and per device.
  ASSERT_GT(s.codec_raw_bytes, 0);
  ASSERT_GT(s.codec_wire_bytes, 0);
  EXPECT_GT(s.codec_raw_bytes, s.codec_wire_bytes);
  long long dev_raw = 0, dev_wire = 0;
  for (const auto& [id, d] : s.devices) {
    dev_raw += d.codec_raw_bytes;
    dev_wire += d.codec_wire_bytes;
  }
  EXPECT_EQ(dev_raw, s.codec_raw_bytes);
  EXPECT_EQ(dev_wire, s.codec_wire_bytes);
  std::ostringstream text;
  obs::write_summary(text, s);
  EXPECT_NE(text.str().find("codec:"), std::string::npos);

  // Replaying the journal reconstructs the live dashboard — including the
  // codec bytes-saved column — byte-for-byte.
  obs::StragglerDashboard replayed;
  obs::replay_dashboard(events, replayed);
  std::ostringstream replay;
  replayed.render(replay);
  EXPECT_EQ(replay.str(), live.str());
}

}  // namespace
}  // namespace helios
