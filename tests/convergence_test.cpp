// Executable checks of the paper's Sec. V-B convergence analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/convergence.h"
#include "util/rng.h"

namespace helios::core {
namespace {

std::vector<double> random_magnitudes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> g(n);
  for (double& v : g) v = std::fabs(rng.normal());
  return g;
}

TEST(Convergence, ProbabilitiesMeetBudget) {
  const auto g = random_magnitudes(200, 3);
  for (double budget : {10.0, 50.0, 150.0}) {
    const auto p = selection_probabilities(g, budget);
    EXPECT_NEAR(expected_l0(p), budget, budget * 0.05);
    for (double pi : p) {
      EXPECT_GT(pi, 0.0);  // Sec. VI-A: p_i must never be 0
      EXPECT_LE(pi, 1.0);
    }
  }
}

TEST(Convergence, LargestGradientsSaturateFirst) {
  const std::vector<double> g{5.0, 4.0, 0.5, 0.1, 0.1, 0.1, 0.1, 0.1};
  const auto p = selection_probabilities(g, 3.0);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_LT(p[3], 1.0);
  EXPECT_EQ(count_certain(p), 2 + (p[2] >= 1.0 ? 1 : 0));
}

TEST(Convergence, VarianceInflationIsOneForDenseTraining) {
  const auto g = random_magnitudes(64, 5);
  const std::vector<double> ones(64, 1.0);
  EXPECT_DOUBLE_EQ(variance_inflation(g, ones), 1.0);
}

TEST(Convergence, InflationDecreasesWithBudget) {
  const auto g = random_magnitudes(300, 7);
  const auto p_small = selection_probabilities(g, 30.0);
  const auto p_large = selection_probabilities(g, 200.0);
  EXPECT_GT(variance_inflation(g, p_small), variance_inflation(g, p_large));
  EXPECT_GE(variance_inflation(g, p_large), 1.0);
}

TEST(Convergence, OptimalProbabilitiesBeatUniformAtEqualBudget) {
  // The whole point of contribution-aware selection (Eq. 7): at the same
  // expected cost, magnitude-proportional probabilities give a tighter
  // variance than uniform random selection.
  const auto g = random_magnitudes(500, 9);
  const double budget = 75.0;
  const auto p_opt = selection_probabilities(g, budget);
  const std::vector<double> p_uni(500, budget / 500.0);
  EXPECT_LT(variance_inflation(g, p_opt), variance_inflation(g, p_uni));
}

// Executable form of the Eq. 7 trade-off: the minimal expected budget that
// achieves variance inflation <= 1 + eps, as a function of eps.
double minimal_budget_for(const std::vector<double>& g, double eps) {
  double lo = 1.0, hi = static_cast<double>(g.size());
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto p = selection_probabilities(g, mid);
    if (variance_inflation(g, p) <= 1.0 + eps) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

TEST(Convergence, MinimalBudgetShrinksWithEpsilon) {
  // Looser variance tolerance -> fewer neurons need to train (Eq. 7), and
  // eps -> 0 forces nearly dense training.
  const auto g = random_magnitudes(400, 11);
  const double b_tight = minimal_budget_for(g, 0.05);
  const double b_mid = minimal_budget_for(g, 0.5);
  const double b_loose = minimal_budget_for(g, 2.0);
  EXPECT_GT(b_tight, b_mid);
  EXPECT_GT(b_mid, b_loose);
  EXPECT_GT(b_tight, 200.0);  // eps=0.05 keeps most of 400 neurons
  EXPECT_LT(b_loose, 200.0);
}

TEST(Convergence, HeavyTailedGradientsNeedFarFewerNeurons) {
  // The regime soft-training exploits: when contribution is concentrated in
  // a few neurons (top-P_s), a small budget already meets the variance
  // condition — the paper's justification for P_s in [0.05, 0.1].
  std::vector<double> heavy(400, 0.01);
  for (int i = 0; i < 20; ++i) heavy[static_cast<std::size_t>(i)] = 5.0;
  std::vector<double> flat(400, 1.0);
  const double b_heavy = minimal_budget_for(heavy, 0.5);
  const double b_flat = minimal_budget_for(flat, 0.5);
  EXPECT_LT(b_heavy, 0.25 * b_flat);
  // A budget slightly above the dominant count saturates exactly the
  // dominant neurons (they become the certain set C_v).
  const auto p = selection_probabilities(heavy, 25.0);
  EXPECT_GE(count_certain(p), 20);
  EXPECT_DOUBLE_EQ(l0_bound(20, 0.5), 30.0);
}

TEST(Convergence, InputValidation) {
  const std::vector<double> g{1.0, 2.0};
  EXPECT_THROW(selection_probabilities({}, 1.0), std::invalid_argument);
  EXPECT_THROW(selection_probabilities(g, 0.0), std::invalid_argument);
  EXPECT_THROW(selection_probabilities(g, 3.0), std::invalid_argument);
  const std::vector<double> neg{-1.0, 1.0};
  EXPECT_THROW(selection_probabilities(neg, 1.0), std::invalid_argument);
  const std::vector<double> p{1.0};
  EXPECT_THROW(variance_inflation(g, p), std::invalid_argument);
  const std::vector<double> pz{0.0, 1.0};
  EXPECT_THROW(variance_inflation(g, pz), std::invalid_argument);
  EXPECT_THROW(l0_bound(-1, 0.0), std::invalid_argument);
  EXPECT_THROW(l0_bound(1, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace helios::core
