// Crash-tolerant checkpoint/resume, end to end.
//
// The bit-identical-resume contract: a run of N rounds equals a run killed
// at ANY round boundary and resumed from its checkpoint — identical
// per-round records and identical final global parameters — for every
// strategy, at 1 and 4 threads, on every available kernel backend. Plus the
// failure half of the contract: torn, truncated, bit-flipped,
// wrong-version and wrong-architecture checkpoints are refused with clear
// errors, and CheckpointManager falls back to the previous generation.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/checkpoint.h"
#include "fl/fedprox.h"
#include "fl/hierarchy.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "obs/journal_reader.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "tensor/backend/dispatch.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

namespace fs = std::filesystem;

/// Unique scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("helios_crash_resume_") + info->test_suite_name() +
            "_" + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

struct ThreadGuard {
  ~ThreadGuard() { util::set_global_threads(0); }
};

struct BackendGuard {
  ~BackendGuard() { tensor::backend::clear_kernel_backend_override(); }
};

std::unique_ptr<fl::Strategy> make_strategy(const std::string& kind) {
  if (kind == "helios") {
    return std::make_unique<core::HeliosStrategy>(core::HeliosConfig{});
  }
  if (kind == "sync") return std::make_unique<fl::SyncFL>();
  if (kind == "async") return std::make_unique<fl::AsyncFL>();
  if (kind == "afo") return std::make_unique<fl::Afo>();
  if (kind == "random") return std::make_unique<fl::RandomSubmodel>();
  if (kind == "static") return std::make_unique<fl::StaticPrune>();
  throw std::invalid_argument("unknown strategy kind " + kind);
}

struct Snapshot {
  fl::RunResult result;
  std::vector<float> global;
  std::vector<float> buffers;
};

Snapshot snapshot_of(fl::Fleet& fleet, fl::RunResult result) {
  Snapshot snap;
  snap.result = std::move(result);
  snap.global.assign(fleet.server().global().begin(),
                     fleet.server().global().end());
  snap.buffers.assign(fleet.server().global_buffers().begin(),
                      fleet.server().global_buffers().end());
  return snap;
}

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const std::string& context) {
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size()) << context;
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    const fl::RoundRecord& ra = a.result.rounds[i];
    const fl::RoundRecord& rb = b.result.rounds[i];
    EXPECT_EQ(ra.cycle, rb.cycle) << context << " cycle " << i;
    EXPECT_EQ(ra.virtual_time, rb.virtual_time) << context << " cycle " << i;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy)
        << context << " cycle " << i;
    EXPECT_EQ(ra.mean_train_loss, rb.mean_train_loss)
        << context << " cycle " << i;
    EXPECT_EQ(ra.upload_mb, rb.upload_mb) << context << " cycle " << i;
  }
  ASSERT_EQ(a.global.size(), b.global.size()) << context;
  EXPECT_EQ(std::memcmp(a.global.data(), b.global.data(),
                        a.global.size() * sizeof(float)),
            0)
      << context << ": final global parameters differ";
  ASSERT_EQ(a.buffers.size(), b.buffers.size()) << context;
  EXPECT_EQ(std::memcmp(a.buffers.data(), b.buffers.data(),
                        a.buffers.size() * sizeof(float)),
            0)
      << context << ": final global buffers differ";
}

constexpr int kCycles = 6;

Snapshot golden_run(const std::string& kind) {
  fl::Fleet fleet = testing::make_fleet();
  auto strategy = make_strategy(kind);
  fl::RunResult result = strategy->run(fleet, kCycles);
  return snapshot_of(fleet, std::move(result));
}

/// Runs `kill_at` rounds, checkpoints, destroys everything (the simulated
/// crash), rebuilds the identical setup, resumes, and finishes the run.
Snapshot killed_and_resumed_run(const std::string& kind, int kill_at,
                                const std::string& ckpt) {
  {
    fl::Fleet fleet = testing::make_fleet();
    auto strategy = make_strategy(kind);
    fl::RunResult partial;
    partial.method = strategy->name();
    strategy->run_range(fleet, partial, 0, kill_at);
    fleet.save_checkpoint(ckpt, strategy.get(), partial);
    // fleet + strategy die here: nothing carries over but the file.
  }
  fl::Fleet fleet = testing::make_fleet();
  auto strategy = make_strategy(kind);
  fl::RunResult result = fleet.resume(ckpt, strategy.get());
  EXPECT_EQ(static_cast<int>(result.rounds.size()), kill_at);
  strategy->run_range(fleet, result, static_cast<int>(result.rounds.size()),
                      kCycles);
  return snapshot_of(fleet, std::move(result));
}

/// The full contract sweep for one strategy: every kill boundary, at 1 and
/// 4 threads, on every kernel backend this machine has.
void check_resume_contract(const std::string& kind) {
  ThreadGuard tguard;
  BackendGuard bguard;
  TempDir tmp;
  for (const tensor::backend::KernelTable* table :
       tensor::backend::available_tables()) {
    tensor::backend::set_kernel_backend(table->id);
    util::set_global_threads(1);
    const Snapshot golden = golden_run(kind);
    for (int threads : {1, 4}) {
      util::set_global_threads(threads);
      for (int kill_at = 1; kill_at < kCycles; ++kill_at) {
        const std::string context = kind + " backend=" + table->name +
                                    " threads=" + std::to_string(threads) +
                                    " kill_at=" + std::to_string(kill_at);
        const Snapshot resumed = killed_and_resumed_run(
            kind, kill_at, tmp.file("ckpt_" + std::to_string(kill_at)));
        expect_identical(golden, resumed, context);
      }
    }
  }
}

TEST(CrashResumeTest, HeliosBitIdenticalAtEveryKillPoint) {
  check_resume_contract("helios");
}

TEST(CrashResumeTest, SyncFLBitIdenticalAtEveryKillPoint) {
  check_resume_contract("sync");
}

TEST(CrashResumeTest, AsyncFLBitIdenticalAtEveryKillPoint) {
  check_resume_contract("async");
}

TEST(CrashResumeTest, AfoBitIdenticalAtEveryKillPoint) {
  check_resume_contract("afo");
}

TEST(CrashResumeTest, RandomSubmodelBitIdenticalAtEveryKillPoint) {
  check_resume_contract("random");
}

TEST(CrashResumeTest, StaticPruneBitIdenticalAtEveryKillPoint) {
  check_resume_contract("static");
}

// FedProx carries per-client state only (mu, optimizer velocity) — the
// resume must not re-install mu over the restored values.
TEST(CrashResumeTest, FedProxBitIdenticalAtMidpoint) {
  TempDir tmp;
  fl::Fleet golden_fleet = testing::make_fleet();
  fl::FedProx golden_strategy;
  const Snapshot golden = snapshot_of(
      golden_fleet, golden_strategy.run(golden_fleet, kCycles));
  {
    fl::Fleet fleet = testing::make_fleet();
    fl::FedProx strategy;
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, 3);
    fleet.save_checkpoint(tmp.file("ckpt"), &strategy, partial);
  }
  fl::Fleet fleet = testing::make_fleet();
  fl::FedProx strategy;
  fl::RunResult result = fleet.resume(tmp.file("ckpt"), &strategy);
  strategy.run_range(fleet, result, 3, kCycles);
  expect_identical(golden, snapshot_of(fleet, std::move(result)), "fedprox");
}

// ---- run_resumable driver --------------------------------------------------

TEST(RunResumableTest, MatchesUninterruptedRunAndResumesFromDisk) {
  TempDir tmp;
  const Snapshot golden = golden_run("sync");

  fl::ResumableOptions opts;
  opts.base_path = tmp.file("ck");
  opts.keep_last = 2;

  fl::Fleet fleet = testing::make_fleet();
  fl::SyncFL strategy;
  const fl::RunResult first =
      fl::run_resumable(fleet, strategy, kCycles, opts);
  expect_identical(golden, snapshot_of(fleet, first), "run_resumable fresh");

  // Generations pruned to keep_last.
  fl::CheckpointManager manager(opts.base_path, opts.keep_last);
  EXPECT_LE(manager.generations().size(), 2U);

  // A second process with the same base path resumes the finished run and
  // returns the identical result without running any more rounds.
  fl::Fleet fleet2 = testing::make_fleet();
  fl::SyncFL strategy2;
  const fl::RunResult second =
      fl::run_resumable(fleet2, strategy2, kCycles, opts);
  expect_identical(golden, snapshot_of(fleet2, second),
                   "run_resumable resumed");
}

// ---- Corruption / fallback -------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
  return s;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A checkpoint file of a short SyncFL run, for corruption experiments.
std::string make_valid_checkpoint(const TempDir& tmp,
                                  const std::string& name) {
  fl::Fleet fleet = testing::make_fleet();
  fl::SyncFL strategy;
  fl::RunResult partial;
  partial.method = strategy.name();
  strategy.run_range(fleet, partial, 0, 2);
  const std::string path = tmp.file(name);
  fleet.save_checkpoint(path, &strategy, partial);
  return path;
}

void expect_refused(const std::string& path, const char* what) {
  fl::Fleet fleet = testing::make_fleet();
  fl::SyncFL strategy;
  EXPECT_THROW(fleet.resume(path, &strategy), fl::CheckpointError) << what;
}

TEST(CheckpointCorruptionTest, RefusesTamperedFiles) {
  TempDir tmp;
  const std::string path = make_valid_checkpoint(tmp, "ckpt");
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 32U);

  {  // Sanity: the untampered file restores.
    fl::Fleet fleet = testing::make_fleet();
    fl::SyncFL strategy;
    const fl::RunResult r = fleet.resume(path, &strategy);
    EXPECT_EQ(r.rounds.size(), 2U);
  }

  const std::string bad = tmp.file("bad");
  // Missing file.
  expect_refused(tmp.file("nonexistent"), "missing file");
  // Truncated header.
  write_file(bad, bytes.substr(0, 10));
  expect_refused(bad, "truncated header");
  // Truncated payload (torn write without the atomic rename).
  write_file(bad, bytes.substr(0, bytes.size() / 2));
  expect_refused(bad, "truncated payload");
  // Bit flip in the magic.
  std::string flipped = bytes;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x01);
  write_file(bad, flipped);
  expect_refused(bad, "header bit flip");
  // Wrong schema version.
  flipped = bytes;
  flipped[8] = static_cast<char>(flipped[8] + 1);
  write_file(bad, flipped);
  expect_refused(bad, "wrong version");
  // Bit flip in the CRC field (bytes 20..23 of the header).
  flipped = bytes;
  flipped[20] = static_cast<char>(flipped[20] ^ 0x40);
  write_file(bad, flipped);
  expect_refused(bad, "crc bit flip");
  // Bit flip deep in the payload (CRC catches it).
  flipped = bytes;
  flipped[24 + flipped.size() / 3] =
      static_cast<char>(flipped[24 + flipped.size() / 3] ^ 0x10);
  write_file(bad, flipped);
  expect_refused(bad, "payload bit flip");
  // Trailing garbage.
  write_file(bad, bytes + "xx");
  expect_refused(bad, "trailing bytes");
}

TEST(CheckpointCorruptionTest, RefusesWrongArchitectureAndStrategy) {
  TempDir tmp;
  const std::string path = make_valid_checkpoint(tmp, "ckpt");

  {  // Different model architecture (bigger input -> param-count mismatch).
    testing::FleetOptions o;
    o.hw = 10;
    fl::Fleet fleet = testing::make_fleet(o);
    fl::SyncFL strategy;
    EXPECT_THROW(fleet.resume(path, &strategy), fl::CheckpointError);
  }
  {  // Different client roster.
    testing::FleetOptions o;
    o.clients = 6;
    fl::Fleet fleet = testing::make_fleet(o);
    fl::SyncFL strategy;
    EXPECT_THROW(fleet.resume(path, &strategy), fl::CheckpointError);
  }
  {  // Different strategy than the one checkpointed.
    fl::Fleet fleet = testing::make_fleet();
    fl::Afo strategy;
    EXPECT_THROW(fleet.resume(path, &strategy), fl::CheckpointError);
  }
}

TEST(CheckpointManagerTest, FallsBackToPreviousGeneration) {
  TempDir tmp;
  fl::CheckpointManager manager(tmp.file("ck"), /*keep_last=*/3);

  fl::Fleet fleet = testing::make_fleet();
  fl::SyncFL strategy;
  fl::RunResult partial;
  partial.method = strategy.name();

  strategy.run_range(fleet, partial, 0, 1);
  manager.save(fl::make_checkpoint_payload(fleet, &strategy, partial));
  strategy.run_range(fleet, partial, 1, 2);
  const std::string good =
      fl::make_checkpoint_payload(fleet, &strategy, partial);
  manager.save(good);
  ASSERT_EQ(manager.generations().size(), 2U);

  // Newest generation valid: latest_valid picks it.
  std::string payload;
  auto latest = manager.latest_valid(&payload);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, manager.generation_path(1));
  EXPECT_EQ(payload, good);

  // SIGKILL mid-write of generation 2: a torn file (half the framing).
  const std::string torn = read_file(manager.generation_path(1));
  write_file(manager.generation_path(2), torn.substr(0, torn.size() / 2));
  latest = manager.latest_valid(&payload);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, manager.generation_path(1)) << "torn gen2 not skipped";

  // Bit rot in generation 1 as well: falls back to generation 0.
  std::string rotten = read_file(manager.generation_path(1));
  rotten[rotten.size() - 3] ^= 0x04;
  write_file(manager.generation_path(1), rotten);
  latest = manager.latest_valid(&payload);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, manager.generation_path(0));

  // Everything corrupt: no valid generation.
  write_file(manager.generation_path(0), "garbage");
  EXPECT_FALSE(manager.latest_valid(nullptr).has_value());
}

TEST(CheckpointManagerTest, PrunesOldGenerationsAfterDurableWrite) {
  TempDir tmp;
  fl::CheckpointManager manager(tmp.file("ck"), /*keep_last=*/2);
  fl::Fleet fleet = testing::make_fleet();
  fl::SyncFL strategy;
  fl::RunResult partial;
  partial.method = strategy.name();
  for (int cycle = 0; cycle < 4; ++cycle) {
    strategy.run_range(fleet, partial, cycle, cycle + 1);
    manager.save(fl::make_checkpoint_payload(fleet, &strategy, partial));
  }
  const std::vector<long> gens = manager.generations();
  ASSERT_EQ(gens.size(), 2U);
  EXPECT_EQ(gens[0], 2);
  EXPECT_EQ(gens[1], 3);
}

// ---- Churn + simulated network resume --------------------------------------

/// Helios over a churning population on a lossy simulated network — the
/// full-state resume: the churn process's arrival stream and death
/// schedule, every channel's RNG position and the joiner roster must all
/// land exactly where the uninterrupted run has them.
Snapshot churn_net_run(int kill_at, const std::string& ckpt) {
  const int cycles = 5;
  auto build = [](fl::Fleet& fleet, sim::ChurnProcess& churn,
                  core::HeliosStrategy& strategy) {
    fleet.register_checkpointable("churn", &churn);
    strategy.set_cycle_hook(
        [&churn](fl::Fleet& f, int cycle) { churn.step(f, cycle); });
  };
  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 0.002;
  copts.mean_lifetime_s = 4000.0;
  copts.seed = 13;
  copts.max_devices = 10;
  copts.admit_arrivals = false;
  net::NetworkOptions nopts;
  nopts.mode = net::NetMode::kSimulated;
  nopts.channel.loss_prob = 0.05;
  nopts.channel.latency_s = 0.01;
  nopts.channel.jitter_s = 0.02;

  if (kill_at > 0) {
    const sim::PopulationGenerator pop(sim::mobile_longtail(6));
    fl::Fleet fleet = sim::build_fleet(pop);
    sim::ChurnProcess churn(pop, copts);
    core::HeliosStrategy strategy(core::HeliosConfig{});
    build(fleet, churn, strategy);
    fl::NetworkSession session(fleet, nopts);
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, kill_at);
    fleet.save_checkpoint(ckpt, &strategy, partial);
  }

  const sim::PopulationGenerator pop(sim::mobile_longtail(6));
  fl::Fleet fleet = sim::build_fleet(pop);
  sim::ChurnProcess churn(pop, copts);
  core::HeliosStrategy strategy(core::HeliosConfig{});
  build(fleet, churn, strategy);
  fl::NetworkSession session(fleet, nopts);
  fl::RunResult result;
  if (kill_at > 0) {
    result = fleet.resume(ckpt, &strategy);
  } else {
    result.method = strategy.name();
  }
  strategy.run_range(fleet, result, static_cast<int>(result.rounds.size()),
                     cycles);
  return snapshot_of(fleet, std::move(result));
}

TEST(CrashResumeTest, ChurnAndLossyNetworkResumeBitIdentical) {
  TempDir tmp;
  const Snapshot golden = churn_net_run(0, "");
  for (int kill_at = 1; kill_at < 5; ++kill_at) {
    const Snapshot resumed = churn_net_run(
        kill_at, tmp.file("ckpt_" + std::to_string(kill_at)));
    expect_identical(golden, resumed,
                     "churn+net kill_at=" + std::to_string(kill_at));
  }
}

// ---- Hierarchical aggregation resume ----------------------------------------

/// Helios over a depth-2 aggregator tree on a lossy simulated network: the
/// tree's uplink channel RNGs (jitter + loss draws per merge frame) are part
/// of the registered component state, so a mid-run kill must resume onto
/// the identical relay outcomes — same tier deadline misses, same excluded
/// edges, same renormalized aggregates — bit for bit.
Snapshot hierarchy_net_run(int kill_at, const std::string& ckpt) {
  const int cycles = 5;
  agg::TreeTopology topo;
  topo.edge_nodes = 2;
  topo.edge_link.jitter_s = 0.01;
  topo.edge_link.loss_prob = 0.05;
  topo.edge_link.latency_s = 0.005;
  net::NetworkOptions nopts;
  nopts.mode = net::NetMode::kSimulated;
  nopts.channel.loss_prob = 0.05;
  nopts.channel.latency_s = 0.01;
  nopts.channel.jitter_s = 0.02;

  if (kill_at > 0) {
    fl::Fleet fleet = testing::make_fleet();
    fl::HierarchySession hier(fleet, topo);
    fleet.register_checkpointable("hierarchy", &hier);
    fl::NetworkSession session(fleet, nopts);
    core::HeliosStrategy strategy(core::HeliosConfig{});
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, kill_at);
    fleet.save_checkpoint(ckpt, &strategy, partial);
    // fleet + session + tree die here: nothing survives but the file.
  }

  fl::Fleet fleet = testing::make_fleet();
  fl::HierarchySession hier(fleet, topo);
  fleet.register_checkpointable("hierarchy", &hier);
  fl::NetworkSession session(fleet, nopts);
  core::HeliosStrategy strategy(core::HeliosConfig{});
  fl::RunResult result;
  if (kill_at > 0) {
    result = fleet.resume(ckpt, &strategy);
  } else {
    result.method = strategy.name();
  }
  strategy.run_range(fleet, result, static_cast<int>(result.rounds.size()),
                     cycles);
  return snapshot_of(fleet, std::move(result));
}

TEST(CrashResumeTest, HierarchyTreeResumeBitIdentical) {
  TempDir tmp;
  const Snapshot golden = hierarchy_net_run(0, "");
  for (int kill_at = 1; kill_at < 5; ++kill_at) {
    const Snapshot resumed = hierarchy_net_run(
        kill_at, tmp.file("ckpt_" + std::to_string(kill_at)));
    expect_identical(golden, resumed,
                     "hierarchy kill_at=" + std::to_string(kill_at));
  }
}

// ---- Quantized codec + error feedback resume --------------------------------

/// Helios with int8 per-neuron quantized uploads and error feedback on a
/// lossy simulated network. The residual bank is cross-round state: every
/// shipped frame folds last round's quantization error back in, so a resume
/// that loses (or mangles) a single residual diverges immediately. The
/// session registers as the "codec_ef" component; both the final model and
/// the carried residual bank itself must match the uninterrupted run bit
/// for bit.
struct CodecSnapshot {
  Snapshot snap;
  std::map<int, std::vector<float>> residuals;
};

CodecSnapshot codec_ef_net_run(int kill_at, const std::string& ckpt) {
  const int cycles = 5;
  net::NetworkOptions nopts;
  nopts.mode = net::NetMode::kSimulated;
  nopts.payload_codec = codec::CodecId::kInt8PerNeuron;
  nopts.error_feedback = true;
  nopts.channel.loss_prob = 0.05;
  nopts.channel.latency_s = 0.01;
  nopts.channel.jitter_s = 0.02;

  if (kill_at > 0) {
    fl::Fleet fleet = testing::make_fleet();
    fl::NetworkSession session(fleet, nopts);
    fleet.register_checkpointable("codec_ef", &session);
    core::HeliosStrategy strategy(core::HeliosConfig{});
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, kill_at);
    fleet.save_checkpoint(ckpt, &strategy, partial);
    // Session (and its residual bank) dies here.
  }

  fl::Fleet fleet = testing::make_fleet();
  fl::NetworkSession session(fleet, nopts);
  fleet.register_checkpointable("codec_ef", &session);
  core::HeliosStrategy strategy(core::HeliosConfig{});
  fl::RunResult result;
  if (kill_at > 0) {
    result = fleet.resume(ckpt, &strategy);
  } else {
    result.method = strategy.name();
  }
  strategy.run_range(fleet, result, static_cast<int>(result.rounds.size()),
                     cycles);
  CodecSnapshot out;
  out.snap = snapshot_of(fleet, std::move(result));
  out.residuals = session.feedback().all();
  return out;
}

TEST(CrashResumeTest, ErrorFeedbackResidualsResumeBitIdentical) {
  TempDir tmp;
  const CodecSnapshot golden = codec_ef_net_run(0, "");
  ASSERT_FALSE(golden.residuals.empty());
  for (int kill_at = 1; kill_at < 5; ++kill_at) {
    const CodecSnapshot resumed = codec_ef_net_run(
        kill_at, tmp.file("ckpt_" + std::to_string(kill_at)));
    const std::string context = "codec_ef kill_at=" + std::to_string(kill_at);
    expect_identical(golden.snap, resumed.snap, context);
    ASSERT_EQ(golden.residuals.size(), resumed.residuals.size()) << context;
    for (const auto& [id, r] : golden.residuals) {
      const auto it = resumed.residuals.find(id);
      ASSERT_NE(it, resumed.residuals.end()) << context << " client " << id;
      ASSERT_EQ(r.size(), it->second.size()) << context << " client " << id;
      EXPECT_EQ(std::memcmp(r.data(), it->second.data(),
                            r.size() * sizeof(float)),
                0)
          << context << ": residual bank differs for client " << id;
    }
  }
}

// ---- Journal continuity -----------------------------------------------------

TEST(CrashResumeTest, JournalContinuesSeamlesslyAcrossResume) {
  TempDir tmp;
  const std::string prefix = tmp.file("run");
  const std::string ckpt = tmp.file("ckpt");
  {
    obs::TelemetryConfig tc;
    tc.tracing = false;
    tc.journal = true;
    tc.artifact_prefix = prefix;
    obs::TelemetrySink sink(tc);
    fl::Fleet fleet = testing::make_fleet();
    fleet.set_telemetry(&sink);
    fl::SyncFL strategy;
    fl::RunResult partial;
    partial.method = strategy.name();
    strategy.run_range(fleet, partial, 0, 3);
    fleet.save_checkpoint(ckpt, &strategy, partial);
    // Simulated crash: a torn half-line lands after the checkpointed
    // offset (the process died mid-append). The sink is destroyed without
    // flush() — as a kill would leave it.
    std::ofstream torn(prefix + ".journal.jsonl",
                       std::ios::app | std::ios::binary);
    torn << "{\"v\":1,\"t\":\"round\",\"r\":99,\"de";
  }

  // Resumed process: reopen the journal exactly where the checkpoint left
  // it, discarding the torn tail.
  const fl::CheckpointInfo info = fl::peek_checkpoint(ckpt);
  EXPECT_EQ(info.completed_cycles, 3);
  EXPECT_GT(info.journal_byte_offset, 0U);
  {
    obs::TelemetryConfig tc;
    tc.tracing = false;
    tc.journal = true;
    tc.artifact_prefix = prefix;
    tc.journal_resume = true;
    tc.journal_resume_offset = info.journal_byte_offset;
    tc.journal_resume_events = info.journal_events;
    obs::TelemetrySink sink(tc);
    fl::Fleet fleet = testing::make_fleet();
    fleet.set_telemetry(&sink);
    fl::SyncFL strategy;
    fl::RunResult result = fleet.resume(ckpt, &strategy);
    strategy.run_range(fleet, result, 3, kCycles);
    sink.flush();
  }

  // The resumed journal reads as ONE uninterrupted run: a single
  // run_start, rounds 0..5 contiguous with no duplicates, one run_end.
  std::ifstream is(prefix + ".journal.jsonl");
  ASSERT_TRUE(is.is_open());
  const std::vector<obs::JournalEvent> events = obs::read_journal(is);
  int run_starts = 0;
  int run_ends = 0;
  int next_round = 0;
  for (const obs::JournalEvent& ev : events) {
    if (ev.type == "run_start") ++run_starts;
    if (ev.type == "run_end") ++run_ends;
    if (ev.type == "round") {
      EXPECT_EQ(ev.round, next_round) << "round drift across resume";
      ++next_round;
    }
  }
  EXPECT_EQ(run_starts, 1);
  EXPECT_EQ(run_ends, 1);
  EXPECT_EQ(next_round, kCycles);
  const obs::JournalSummary summary = obs::summarize_journal(events);
  EXPECT_EQ(summary.rounds, kCycles);
}

// ---- RngState ---------------------------------------------------------------

TEST(RngStateTest, RoundTripReproducesTheFutureSequence) {
  util::Rng rng(0xFEEDU);
  for (int i = 0; i < 1000; ++i) rng.next_u64();  // advance mid-stream
  const util::RngState snap = rng.state();
  util::Rng restored = util::Rng::from_state(snap);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(rng.next_u64(), restored.next_u64()) << "draw " << i;
  }
  EXPECT_TRUE(rng.state() == restored.state());
}

TEST(RngStateTest, MidBoxMullerCachedNormalSurvivesTheRoundTrip) {
  util::Rng rng(7);
  rng.normal();  // Box-Muller computes a pair; one draw is now cached
  const util::RngState snap = rng.state();
  EXPECT_TRUE(snap.has_cached_normal);
  util::Rng restored = util::Rng::from_state(snap);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(rng.normal(), restored.normal()) << "draw " << i;
  }
}

TEST(RngStateTest, ForkIsStableAcrossTheRoundTrip) {
  util::Rng rng(42);
  for (int i = 0; i < 17; ++i) rng.uniform();
  const util::RngState snap = rng.state();

  // fork() must not advance the parent...
  util::Rng child_a = rng.fork(5);
  EXPECT_TRUE(rng.state() == snap);

  // ...and a restored parent forks the identical child.
  util::Rng restored = util::Rng::from_state(snap);
  util::Rng child_b = restored.fork(5);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64()) << "draw " << i;
  }
  // Parents continue identically after forking.
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(rng.next_u64(), restored.next_u64()) << "draw " << i;
  }
}

}  // namespace
}  // namespace helios
