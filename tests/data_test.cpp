#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/loader.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace helios::data {
namespace {

TEST(Dataset, ValidateChecksConsistency) {
  Dataset d;
  d.images = Tensor({2, 1, 2, 2});
  d.labels = {0, 1};
  d.num_classes = 2;
  EXPECT_NO_THROW(d.validate());
  d.labels = {0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.labels = {0, 5};
  EXPECT_THROW(d.validate(), std::out_of_range);
}

TEST(Dataset, SubsetPreservesContent) {
  util::Rng rng(1);
  SyntheticSpec spec;
  spec.samples = 10;
  spec.height = spec.width = 4;
  spec.classes = 3;
  Dataset d = make_synthetic(spec, rng);
  const std::vector<std::size_t> idx{7, 2, 9};
  Dataset s = subset(d, idx);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[0], d.labels[7]);
  EXPECT_EQ(s.labels[2], d.labels[9]);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(s.images.at(1, 0, p / 4, p % 4), d.images.at(2, 0, p / 4, p % 4));
  }
  const std::vector<std::size_t> bad{10};
  EXPECT_THROW(subset(d, bad), std::out_of_range);
}

TEST(Dataset, ClassHistogramSums) {
  util::Rng rng(2);
  SyntheticSpec spec;
  spec.samples = 50;
  spec.height = spec.width = 4;
  spec.classes = 5;
  Dataset d = make_synthetic(spec, rng);
  auto hist = class_histogram(d);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), 0), 50);
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.samples = 8;
  spec.height = spec.width = 6;
  util::Rng a(3), b(3);
  Dataset d1 = make_synthetic(spec, a);
  Dataset d2 = make_synthetic(spec, b);
  EXPECT_TRUE(d1.images.allclose(d2.images));
  EXPECT_EQ(d1.labels, d2.labels);
}

TEST(Synthetic, PrototypeSeedDefinesTask) {
  SyntheticSpec spec;
  spec.samples = 64;
  spec.height = spec.width = 6;
  spec.classes = 3;
  spec.noise = 0.05F;  // nearly noiseless -> samples sit near prototypes
  util::Rng a(4), b(5);
  Dataset train = make_synthetic(spec, a);
  Dataset test = make_synthetic(spec, b);
  // Same prototype seed: a same-class train/test pair is much closer than a
  // cross-class pair on average.
  auto dist = [&](const Dataset& x, int i, const Dataset& y, int j) {
    double s = 0.0;
    for (int p = 0; p < 36; ++p) {
      const double d = x.images.at(i, 0, p / 6, p % 6) -
                       y.images.at(j, 0, p / 6, p % 6);
      s += d * d;
    }
    return s;
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) {
      if (train.labels[i] == test.labels[j]) {
        same += dist(train, i, test, j);
        ++same_n;
      } else {
        cross += dist(train, i, test, j);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same / same_n, 0.5 * cross / cross_n);
}

TEST(Synthetic, PresetsMatchPaperShapes) {
  EXPECT_EQ(mnist_like_spec(10).channels, 1);
  EXPECT_EQ(mnist_like_spec(10).height, 28);
  EXPECT_EQ(cifar10_like_spec(10).channels, 3);
  EXPECT_EQ(cifar10_like_spec(10).height, 32);
  EXPECT_EQ(cifar100_like_spec(10).classes, 100);
}

TEST(Synthetic, RejectsBadSpec) {
  util::Rng rng(6);
  SyntheticSpec bad;
  bad.samples = 0;
  EXPECT_THROW(make_synthetic(bad, rng), std::invalid_argument);
}

TEST(Partition, IidIsExactAndBalanced) {
  util::Rng rng(7);
  auto p = partition_iid(103, 4, rng);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(is_exact_partition(p, 103));
  for (const auto& part : p) {
    EXPECT_GE(part.size(), 25u);
    EXPECT_LE(part.size(), 26u);
  }
}

TEST(Partition, ShardsAreExactAndSkewed) {
  util::Rng rng(8);
  // 200 samples, 10 classes sorted in blocks of 20.
  std::vector<int> labels(200);
  for (int i = 0; i < 200; ++i) labels[static_cast<std::size_t>(i)] = i / 20;
  auto p = partition_shards(labels, 5, 2, rng);
  EXPECT_TRUE(is_exact_partition(p, 200));
  // Each client holds 2 shards of 20 -> at most ~3 distinct classes
  // (shards can straddle a class boundary when unaligned; here they align).
  for (const auto& part : p) {
    std::set<int> classes;
    for (auto idx : part) classes.insert(labels[idx]);
    EXPECT_LE(classes.size(), 3u);
  }
}

TEST(Partition, ShardsRejectTooFewSamples) {
  util::Rng rng(9);
  std::vector<int> labels(5, 0);
  EXPECT_THROW(partition_shards(labels, 3, 2, rng), std::invalid_argument);
}

TEST(Partition, DirichletIsExact) {
  util::Rng rng(10);
  std::vector<int> labels(300);
  for (std::size_t i = 0; i < 300; ++i) {
    labels[i] = static_cast<int>(rng.uniform_int(6));
  }
  auto p = partition_dirichlet(labels, 5, 6, 0.3, rng);
  EXPECT_TRUE(is_exact_partition(p, 300));
}

TEST(Partition, DirichletSkewIncreasesWithSmallBeta) {
  util::Rng rng(11);
  std::vector<int> labels(2000);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(rng.uniform_int(10));
  }
  auto skew_of = [&](double beta) {
    util::Rng r2(12);
    auto p = partition_dirichlet(labels, 4, 10, beta, r2);
    // Mean over clients of the max class share.
    double total = 0.0;
    for (const auto& part : p) {
      std::vector<int> hist(10, 0);
      for (auto idx : part) ++hist[static_cast<std::size_t>(labels[idx])];
      const int mx = *std::max_element(hist.begin(), hist.end());
      total += part.empty() ? 0.0
                            : static_cast<double>(mx) /
                                  static_cast<double>(part.size());
    }
    return total / 4.0;
  };
  EXPECT_GT(skew_of(0.1), skew_of(100.0));
}

TEST(Partition, ExactnessDetectorCatchesErrors) {
  Partition p{{0, 1}, {1, 2}};
  EXPECT_FALSE(is_exact_partition(p, 3));  // 1 appears twice
  Partition q{{0}, {2}};
  EXPECT_FALSE(is_exact_partition(q, 3));  // 1 missing
}

TEST(Loader, CoversEpochExactlyOnce) {
  util::Rng rng(13);
  SyntheticSpec spec;
  spec.samples = 23;
  spec.height = spec.width = 4;
  spec.classes = 2;
  Dataset d = make_synthetic(spec, rng);
  DataLoader loader(d, 5, util::Rng(14));
  EXPECT_EQ(loader.batches_per_epoch(), 5);
  int seen = 0;
  for (int b = 0; b < loader.batches_per_epoch(); ++b) {
    seen += loader.next().size();
  }
  EXPECT_EQ(seen, 23);
}

TEST(Loader, DropLastSkipsPartialBatch) {
  util::Rng rng(15);
  SyntheticSpec spec;
  spec.samples = 23;
  spec.height = spec.width = 4;
  spec.classes = 2;
  Dataset d = make_synthetic(spec, rng);
  DataLoader loader(d, 5, util::Rng(16), /*drop_last=*/true);
  EXPECT_EQ(loader.batches_per_epoch(), 4);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(loader.next().size(), 5);
  }
}

TEST(Loader, BatchLabelsMatchImages) {
  util::Rng rng(17);
  SyntheticSpec spec;
  spec.samples = 12;
  spec.height = spec.width = 4;
  spec.classes = 3;
  spec.noise = 0.01F;
  Dataset d = make_synthetic(spec, rng);
  DataLoader loader(d, 4, util::Rng(18));
  Batch b = loader.next();
  // Each batch image must be bit-identical to some dataset image with the
  // same label.
  for (int i = 0; i < b.size(); ++i) {
    bool found = false;
    for (int j = 0; j < d.size(); ++j) {
      if (d.labels[static_cast<std::size_t>(j)] != b.labels[static_cast<std::size_t>(i)]) continue;
      bool same = true;
      for (int p = 0; p < 16 && same; ++p) {
        same = b.images.at(i, 0, p / 4, p % 4) ==
               d.images.at(j, 0, p / 4, p % 4);
      }
      found |= same;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Loader, RejectsBadConstruction) {
  util::Rng rng(19);
  SyntheticSpec spec;
  spec.samples = 4;
  spec.height = spec.width = 4;
  Dataset d = make_synthetic(spec, rng);
  EXPECT_THROW(DataLoader(d, 0, util::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace helios::data
