// The threading determinism contract, end to end: the same fleet run under
// HELIOS_THREADS=1 and HELIOS_THREADS=4 must produce bit-identical results
// — identical accuracy traces and identical final global parameters.
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { util::set_global_threads(0); }
};

struct Snapshot {
  fl::RunResult result;
  std::vector<float> global;
  std::vector<float> buffers;
};

template <typename MakeStrategy>
Snapshot run_with_threads(int threads, MakeStrategy make, int cycles,
                          bool ideal_network = false) {
  util::set_global_threads(threads);
  fl::Fleet fleet = testing::make_fleet();
  std::optional<fl::NetworkSession> session;
  if (ideal_network) {
    session.emplace(fleet, net::NetworkOptions{});  // default = kIdeal
  }
  auto strategy = make();
  Snapshot snap;
  snap.result = strategy.run(fleet, cycles);
  snap.global.assign(fleet.server().global().begin(),
                     fleet.server().global().end());
  snap.buffers.assign(fleet.server().global_buffers().begin(),
                      fleet.server().global_buffers().end());
  return snap;
}

void expect_identical(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size());
  for (std::size_t i = 0; i < a.result.rounds.size(); ++i) {
    const fl::RoundRecord& ra = a.result.rounds[i];
    const fl::RoundRecord& rb = b.result.rounds[i];
    EXPECT_EQ(ra.cycle, rb.cycle);
    EXPECT_EQ(ra.virtual_time, rb.virtual_time) << "cycle " << i;
    EXPECT_EQ(ra.test_accuracy, rb.test_accuracy) << "cycle " << i;
    EXPECT_EQ(ra.mean_train_loss, rb.mean_train_loss) << "cycle " << i;
    EXPECT_EQ(ra.upload_mb, rb.upload_mb) << "cycle " << i;
  }
  ASSERT_EQ(a.global.size(), b.global.size());
  EXPECT_EQ(std::memcmp(a.global.data(), b.global.data(),
                        a.global.size() * sizeof(float)),
            0)
      << "final global parameters differ between thread counts";
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  EXPECT_EQ(std::memcmp(a.buffers.data(), b.buffers.data(),
                        a.buffers.size() * sizeof(float)),
            0)
      << "final global buffers differ between thread counts";
}

TEST(DeterminismTest, HeliosBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto make = [] { return core::HeliosStrategy(core::HeliosConfig{}); };
  const Snapshot seq = run_with_threads(1, make, 4);
  const Snapshot par = run_with_threads(4, make, 4);
  expect_identical(seq, par);
}

TEST(DeterminismTest, SyncFLBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto make = [] { return fl::SyncFL(); };
  const Snapshot seq = run_with_threads(1, make, 4);
  const Snapshot par = run_with_threads(4, make, 4);
  expect_identical(seq, par);
}

// The default (ideal-channel) NetworkOptions must reproduce the no-network
// results bit-for-bit — frames are encoded, checked and counted, but never
// perturb timing, delivery, or arithmetic — at 1 and 4 threads alike.
TEST(DeterminismTest, HeliosIdealNetworkBitIdenticalToNoNetwork) {
  ThreadGuard guard;
  auto make = [] { return core::HeliosStrategy(core::HeliosConfig{}); };
  const Snapshot plain1 = run_with_threads(1, make, 4);
  const Snapshot net1 = run_with_threads(1, make, 4, /*ideal_network=*/true);
  expect_identical(plain1, net1);
  const Snapshot net4 = run_with_threads(4, make, 4, /*ideal_network=*/true);
  expect_identical(plain1, net4);
}

TEST(DeterminismTest, SyncFLIdealNetworkBitIdenticalToNoNetwork) {
  ThreadGuard guard;
  auto make = [] { return fl::SyncFL(); };
  const Snapshot plain1 = run_with_threads(1, make, 4);
  const Snapshot net1 = run_with_threads(1, make, 4, /*ideal_network=*/true);
  expect_identical(plain1, net1);
  const Snapshot net4 = run_with_threads(4, make, 4, /*ideal_network=*/true);
  expect_identical(plain1, net4);
}

}  // namespace
}  // namespace helios
