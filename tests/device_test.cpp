#include <gtest/gtest.h>

#include "device/cost_model.h"
#include "device/resource.h"
#include "device/virtual_clock.h"
#include "models/zoo.h"

namespace helios::device {
namespace {

TEST(Resource, PresetsAreValid) {
  for (const auto& p : table1_stragglers()) {
    EXPECT_TRUE(p.valid()) << p.name;
  }
  EXPECT_TRUE(jetson_nano_gpu().valid());
  EXPECT_TRUE(edge_server().valid());
}

TEST(Resource, Table1ComputeOrdering) {
  const auto s = table1_stragglers();
  ASSERT_EQ(s.size(), 4u);
  // Paper order: Nano 7 > Raspberry 6 > DeepLens GPU 5.5 > DeepLens CPU 4.5.
  EXPECT_GT(s[0].compute_gflops, s[1].compute_gflops);
  EXPECT_GT(s[1].compute_gflops, s[2].compute_gflops);
  EXPECT_GT(s[2].compute_gflops, s[3].compute_gflops);
}

TEST(Resource, Table1CycleTimesMatchPaper) {
  // Paper Table I: 20.6 / 23.8 / 27.2 / 34 minutes for AlexNet/CIFAR-10.
  const double expected_minutes[4] = {20.6, 23.8, 27.2, 34.0};
  const auto stragglers = table1_stragglers();
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    const WorkloadEstimate w =
        paper_alexnet_cycle_workload(stragglers[i].memory_mb);
    const double minutes = total_cycle_seconds(stragglers[i], w) / 60.0;
    EXPECT_NEAR(minutes, expected_minutes[i], expected_minutes[i] * 0.06)
        << stragglers[i].name;
  }
}

TEST(Resource, SimScalingPreservesCompute) {
  const ResourceProfile base = deeplens_cpu();
  const ResourceProfile sim = sim_scaled(base, 25.0);
  EXPECT_EQ(sim.compute_gflops, base.compute_gflops);
  EXPECT_EQ(sim.mem_bandwidth_mbps, base.mem_bandwidth_mbps * 25.0);
  EXPECT_EQ(sim.net_bandwidth_mbps, base.net_bandwidth_mbps * 25.0);
  EXPECT_NE(sim.name, base.name);
}

TEST(CostModel, WorkloadScalesWithSamplesAndEpochs) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 1);
  const auto w1 = estimate_workload(m, 100, 1);
  const auto w2 = estimate_workload(m, 100, 2);
  const auto w3 = estimate_workload(m, 200, 1);
  EXPECT_NEAR(w2.train_gflops, 2.0 * w1.train_gflops, 1e-9);
  EXPECT_NEAR(w3.train_gflops, 2.0 * w1.train_gflops, 1e-9);
  EXPECT_GT(w1.upload_mb, 0.0);
}

TEST(CostModel, MaskReducesComputeAndUpload) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 2);
  const auto full = estimate_workload(m, 100, 1);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m.neuron_total()), 0);
  for (std::size_t j = 0; j < mask.size(); j += 2) mask[j] = 1;
  m.set_neuron_mask(mask);
  const auto half = estimate_workload(m, 100, 1);
  EXPECT_LT(half.train_gflops, full.train_gflops);
  EXPECT_LT(half.upload_mb, full.upload_mb);
  m.clear_neuron_mask();
}

TEST(CostModel, FasterDeviceFinishesSooner) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 3);
  const auto w = estimate_workload(m, 128, 1);
  const double fast = total_cycle_seconds(sim_scaled(edge_server()), w);
  const double slow = total_cycle_seconds(sim_scaled(deeplens_cpu()), w);
  EXPECT_LT(fast, slow);
  // Compute gap dominates under sim scaling: ratio within [3, 15].
  EXPECT_GT(slow / fast, 3.0);
  EXPECT_LT(slow / fast, 15.0);
}

TEST(CostModel, DecomposesIntoTrainingPlusUpload) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 4);
  const auto w = estimate_workload(m, 64, 1);
  const ResourceProfile p = sim_scaled(raspberry_pi());
  EXPECT_NEAR(total_cycle_seconds(p, w),
              training_cycle_seconds(p, w) + upload_seconds(p, w), 1e-12);
}

TEST(CostModel, PeakMemoryPositiveAndMonotoneInBatch) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 5);
  const double m1 = peak_memory_mb(m, 1);
  const double m32 = peak_memory_mb(m, 32);
  EXPECT_GT(m1, 0.0);
  EXPECT_GT(m32, m1);
  EXPECT_THROW(peak_memory_mb(m, 0), std::invalid_argument);
}

TEST(CostModel, RejectsInvalidInput) {
  nn::Model m = models::make_mlp({1, 4, 4, 2}, 6, 4);
  EXPECT_THROW(estimate_workload(m, -1, 1), std::invalid_argument);
  WorkloadEstimate w;
  ResourceProfile bad;
  bad.compute_gflops = 0.0;
  EXPECT_THROW(training_cycle_seconds(bad, w), std::invalid_argument);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  clock.advance_to(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  EXPECT_THROW(clock.advance(-1.0), std::invalid_argument);
  EXPECT_THROW(clock.advance_to(4.0), std::invalid_argument);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace helios::device
