// Failure injection and boundary conditions across the stack.
#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "data/loader.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;
using helios::testing::tiny_dataset;

TEST(EdgeCases, BatchLargerThanDatasetStillIterates) {
  data::Dataset d = tiny_dataset(5);
  data::DataLoader loader(d, 16, util::Rng(1));
  EXPECT_EQ(loader.batches_per_epoch(), 1);
  data::Batch b = loader.next();
  EXPECT_EQ(b.size(), 5);
}

TEST(EdgeCases, SingleClassDatasetTrains) {
  data::SyntheticSpec spec;
  spec.samples = 24;
  spec.height = spec.width = 6;
  spec.classes = 1;
  util::Rng rng(2);
  data::Dataset d = data::make_synthetic(spec, rng);
  for (int y : d.labels) EXPECT_EQ(y, 0);
  // A 1-class head still trains (loss -> 0 quickly).
  nn::Model m = models::make_mlp({1, 6, 6, 1}, 3, 4);
  nn::Sgd opt(0.1F);
  data::DataLoader loader(d, 8, util::Rng(4));
  data::Batch b = loader.next();
  const auto r = nn::train_step(m, opt, b.images, b.labels);
  EXPECT_GE(r.correct, 0);
}

TEST(EdgeCases, ZeroCycleRunIsEmpty) {
  fl::Fleet fleet = make_fleet();
  const fl::RunResult res = fl::SyncFL().run(fleet, 0);
  EXPECT_TRUE(res.rounds.empty());
  EXPECT_EQ(res.final_accuracy(), 0.0);
}

TEST(EdgeCases, SingleClientFederationWorks) {
  FleetOptions o;
  o.clients = 1;
  o.stragglers = 0;
  fl::Fleet fleet = make_fleet(o);
  const fl::RunResult res = fl::SyncFL().run(fleet, 3);
  EXPECT_EQ(res.rounds.size(), 3u);
}

TEST(EdgeCases, HeliosWithNoStragglersMatchesSyncBehaviour) {
  FleetOptions o;
  o.stragglers = 0;
  fl::Fleet a = make_fleet(o);
  fl::Fleet b = make_fleet(o);
  const fl::RunResult helios = core::HeliosStrategy().run(a, 4);
  const fl::RunResult sync = fl::SyncFL().run(b, 4);
  // No submodels anywhere: identical updates, identical accuracy trace.
  ASSERT_EQ(helios.rounds.size(), sync.rounds.size());
  for (std::size_t i = 0; i < helios.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(helios.rounds[i].test_accuracy,
                     sync.rounds[i].test_accuracy);
  }
}

TEST(EdgeCases, StragglerAtFullVolumeTrainsFullModel) {
  FleetOptions o;
  o.volume = 1.0;
  fl::Fleet fleet = make_fleet(o);
  // volume == 1.0: HeliosStrategy must not create submodels.
  const fl::RunResult res = core::HeliosStrategy().run(fleet, 2);
  EXPECT_EQ(res.rounds.size(), 2u);
}

TEST(EdgeCases, FleetRejectsMismatchedArchitectures) {
  data::SyntheticSpec spec;
  spec.samples = 20;
  spec.height = spec.width = 8;
  spec.classes = 4;
  util::Rng rng(5);
  data::Dataset test = data::make_synthetic(spec, rng);
  fl::Fleet fleet(models::mlp_spec({1, 8, 8, 4}, 24), test, 1);
  // The Fleet builds clients from its own spec, so mismatch cannot happen
  // through the public API; verify the parameter-count guard directly.
  EXPECT_NO_THROW(fleet.add_client(tiny_dataset(16), {},
                                   device::sim_scaled(device::edge_server())));
}

TEST(EdgeCases, IdentificationOnUniformFleetFlagsNobody) {
  FleetOptions o;
  o.stragglers = 0;  // all edge servers
  fl::Fleet fleet = make_fleet(o);
  const auto report = core::StragglerIdentifier::resource_based(fleet, 1.5);
  EXPECT_TRUE(report.straggler_ids().empty());
}

TEST(EdgeCases, MaskOfAllOnesEqualsNoMask) {
  nn::Model a = models::make_lenet({1, 12, 12, 4}, 9);
  nn::Model b = models::make_lenet({1, 12, 12, 4}, 9);
  std::vector<std::uint8_t> ones(static_cast<std::size_t>(a.neuron_total()),
                                 1);
  a.set_neuron_mask(ones);
  util::Rng rng(10);
  tensor::Tensor x = tensor::Tensor::randn({2, 1, 12, 12}, rng);
  EXPECT_TRUE(a.forward(x, false).allclose(b.forward(x, false)));
  EXPECT_DOUBLE_EQ(a.forward_flops_per_sample(),
                   b.forward_flops_per_sample());
}

TEST(EdgeCases, MaskOfMinimumBudgetStillProducesOutput) {
  nn::Model m = models::make_lenet({1, 12, 12, 4}, 11);
  util::Rng rng(12);
  const auto mask = fl::random_volume_mask(m, 0.001, rng);  // 1 per layer
  m.set_neuron_mask(mask);
  tensor::Tensor x = tensor::Tensor::randn({2, 1, 12, 12}, rng);
  tensor::Tensor y = m.forward(x, false);
  EXPECT_EQ(y.dim(1), 4);
  // Output is finite.
  for (float v : y.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(EdgeCases, EmptyTestSetEvaluatesToZero) {
  fl::Server server(models::make_mlp({1, 4, 4, 2}, 13, 4));
  data::Dataset empty;
  empty.images = tensor::Tensor({0, 1, 4, 4});
  empty.num_classes = 2;
  EXPECT_DOUBLE_EQ(server.evaluate_accuracy(empty), 0.0);
}

}  // namespace
}  // namespace helios
