// Tests for the extension features: FedProx, top-k update compression, and
// communication accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/helios_strategy.h"
#include "fl/compression.h"
#include "fl/fedprox.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios::fl {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

TEST(FedProx, RunsAndLearns) {
  FleetOptions o;
  o.samples_per_client = 64;
  Fleet fleet = make_fleet(o);
  FedProx strategy(0.01F);
  const RunResult res = strategy.run(fleet, 10);
  EXPECT_EQ(res.method, "FedProx");
  ASSERT_EQ(res.rounds.size(), 10u);
  EXPECT_GT(res.final_accuracy(3), 0.40);
}

TEST(FedProx, StragglersDoLessWorkSoRoundsAreFaster) {
  Fleet prox_fleet = make_fleet();
  Fleet sync_fleet = make_fleet();
  const RunResult prox = FedProx(0.01F).run(prox_fleet, 3);
  const RunResult sync = SyncFL().run(sync_fleet, 3);
  EXPECT_LT(prox.rounds.back().virtual_time,
            sync.rounds.back().virtual_time);
}

TEST(FedProx, ValidatesArguments) {
  EXPECT_THROW(FedProx(-0.1F), std::invalid_argument);
  EXPECT_THROW(FedProx(0.1F, 0.0), std::invalid_argument);
  EXPECT_THROW(FedProx(0.1F, 1.5), std::invalid_argument);
}

TEST(FedProx, ProximalTermShrinksDriftFromGlobal) {
  // With a huge mu, local training barely moves from the anchor.
  FleetOptions o;
  o.clients = 2;
  o.stragglers = 0;
  Fleet free_fleet = make_fleet(o);
  Fleet anchored_fleet = make_fleet(o);
  auto drift = [](Fleet& fleet, float mu) {
    Client& c = fleet.client(0);
    c.set_proximal_mu(mu);
    const auto base = fleet.server().global();
    const ClientUpdate u =
        c.run_cycle(base, fleet.server().global_buffers(), {});
    double d = 0.0;
    for (std::size_t f = 0; f < base.size(); ++f) {
      const double e = u.params[f] - base[f];
      d += e * e;
    }
    return std::sqrt(d);
  };
  EXPECT_LT(drift(anchored_fleet, 50.0F), 0.5 * drift(free_fleet, 0.0F));
}

TEST(WorkScale, ReducesTimeAndIsValidated) {
  Fleet fleet = make_fleet();
  Client& c = fleet.client(0);
  const auto base = fleet.server().global();
  const auto buffers = fleet.server().global_buffers();
  const ClientUpdate full = c.run_cycle(base, buffers, {}, 1.0);
  const ClientUpdate half = c.run_cycle(base, buffers, {}, 0.5);
  EXPECT_LT(half.train_seconds, full.train_seconds);
  EXPECT_THROW(c.run_cycle(base, buffers, {}, 0.0), std::invalid_argument);
  EXPECT_THROW(c.run_cycle(base, buffers, {}, 1.5), std::invalid_argument);
}

TEST(Compression, TopKKeepsLargestDeltas) {
  ClientUpdate u;
  u.params = {1.0F, 2.0F, 3.0F, 4.0F, 5.0F};
  u.upload_mb = 10.0;
  u.upload_seconds = 2.0;
  const std::vector<float> base{1.0F, 0.0F, 3.0F, 0.0F, 4.0F};
  // Deltas: 0, 2, 0, 4, 1 -> eligible {1, 3, 4}; keep top 2/3.
  const CompressionStats stats = compress_update_topk(u, base, 0.67);
  EXPECT_EQ(stats.total_entries, 3u);
  EXPECT_EQ(stats.kept_entries, 2u);
  EXPECT_EQ(u.params[1], 2.0F);   // |delta|=2 kept
  EXPECT_EQ(u.params[3], 4.0F);   // |delta|=4 kept
  EXPECT_EQ(u.params[4], 4.0F);   // |delta|=1 reverted to base
  EXPECT_NEAR(u.upload_mb, 10.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(u.upload_seconds, 2.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.relative_error, 1.0 / std::sqrt(1 + 4 + 16), 1e-6);
}

TEST(Compression, FullKeepIsNoOp) {
  ClientUpdate u;
  u.params = {1.0F, 5.0F};
  u.upload_mb = 3.0;
  const std::vector<float> base{0.0F, 0.0F};
  const CompressionStats stats = compress_update_topk(u, base, 1.0);
  EXPECT_EQ(stats.kept_entries, 2u);
  EXPECT_EQ(stats.relative_error, 0.0);
  EXPECT_EQ(u.upload_mb, 3.0);
}

TEST(Compression, Validation) {
  ClientUpdate u;
  u.params = {1.0F};
  const std::vector<float> base{0.0F, 0.0F};
  EXPECT_THROW(compress_update_topk(u, base, 0.5), std::invalid_argument);
  u.params = {1.0F, 2.0F};
  EXPECT_THROW(compress_update_topk(u, base, 0.0), std::invalid_argument);
  EXPECT_THROW(compress_update_topk(u, base, 1.1), std::invalid_argument);
}

TEST(Compression, CompressedSyncStillLearns) {
  FleetOptions o;
  o.samples_per_client = 64;
  o.stragglers = 0;
  Fleet fleet = make_fleet(o);
  CompressedSyncFL strategy(0.25);
  const RunResult res = strategy.run(fleet, 10);
  EXPECT_GT(res.final_accuracy(3), 0.40);
  // Communication shrinks roughly with the keep fraction versus full sync.
  Fleet full_fleet = make_fleet(o);
  const RunResult full = SyncFL().run(full_fleet, 10);
  EXPECT_LT(res.total_upload_mb(), 0.5 * full.total_upload_mb());
}

TEST(Communication, StrategiesReportUploadVolume) {
  Fleet fleet = make_fleet();
  const RunResult res = SyncFL().run(fleet, 3);
  EXPECT_GT(res.total_upload_mb(), 0.0);
  for (const auto& r : res.rounds) {
    EXPECT_GT(r.upload_mb, 0.0);
  }
}

TEST(Communication, SubmodelsUploadLessThanFullModels) {
  Fleet helios_fleet = make_fleet();
  Fleet sync_fleet = make_fleet();
  const RunResult helios = core::HeliosStrategy().run(helios_fleet, 3);
  const RunResult sync = SyncFL().run(sync_fleet, 3);
  EXPECT_LT(helios.total_upload_mb(), sync.total_upload_mb());
}

}  // namespace
}  // namespace helios::fl
