// Numerical gradient checks for every layer type, with and without masks,
// plus whole-model checks through the softmax cross-entropy head.
#include <gtest/gtest.h>

#include <memory>

#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "test_support.h"

namespace helios {
namespace {

using testing::gradcheck_layer;
using testing::grad_close;
using testing::numerical_derivative;

TEST(GradCheck, Dense) {
  util::Rng rng(11);
  nn::Dense layer(7, 5, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 7}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, DenseMasked) {
  util::Rng rng(12);
  nn::Dense layer(6, 8, rng);
  const std::vector<std::uint8_t> mask{1, 0, 1, 1, 0, 0, 1, 0};
  layer.set_mask(mask);
  tensor::Tensor x = tensor::Tensor::randn({3, 6}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, Conv2d) {
  util::Rng rng(13);
  nn::Conv2d layer(2, 6, 6, 3, 3, 1, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, Conv2dStridedMasked) {
  util::Rng rng(14);
  nn::Conv2d layer(3, 8, 8, 4, 3, 2, 1, rng);
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  layer.set_mask(mask);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, ReLU) {
  util::Rng rng(15);
  nn::ReLU layer;
  tensor::Tensor x = tensor::Tensor::randn({3, 10}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng(16);
  nn::MaxPool2d layer(2, 6, 6, 2, 2);
  tensor::Tensor x = tensor::Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(17);
  nn::GlobalAvgPool layer(3, 4, 4);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 4, 4}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(18);
  nn::BatchNorm2d layer(3, 4, 4);
  tensor::Tensor x = tensor::Tensor::randn({4, 3, 4, 4}, rng);
  // BatchNorm gradients involve batch statistics; slightly looser tolerance.
  EXPECT_EQ(gradcheck_layer(layer, x, rng, 24, 8e-2), 0);
}

TEST(GradCheck, BatchNormMasked) {
  util::Rng rng(19);
  nn::BatchNorm2d layer(4, 3, 3);
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  layer.set_mask(mask);
  tensor::Tensor x = tensor::Tensor::randn({4, 4, 3, 3}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng, 24, 8e-2), 0);
}

TEST(GradCheck, ResidualBlockIdentity) {
  util::Rng rng(20);
  nn::ResidualBlock block(4, 5, 5, 4, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 4, 5, 5}, rng);
  EXPECT_EQ(gradcheck_layer(block, x, rng, 16, 1e-1), 0);
}

TEST(GradCheck, ResidualBlockProjection) {
  util::Rng rng(21);
  nn::ResidualBlock block(3, 6, 6, 6, 2, rng);
  tensor::Tensor x = tensor::Tensor::randn({2, 3, 6, 6}, rng);
  EXPECT_EQ(gradcheck_layer(block, x, rng, 16, 1e-1), 0);
}

// Whole-model check through softmax cross-entropy: compares dL/dparam for a
// sample of parameters against central differences of the scalar loss.
// Central differences are unreliable when a perturbation crosses a ReLU /
// max-pool kink, so a small quota of mismatches (5%) is tolerated at the
// model level; the per-layer checks above remain strict.
void model_gradcheck(nn::Model& model, const tensor::Tensor& x,
                     std::span<const int> labels, int checks, double tol) {
  auto loss_fn = [&]() {
    tensor::Tensor logits = model.forward(x, true);
    tensor::Tensor grad;
    return tensor::softmax_cross_entropy(logits, labels, grad);
  };
  model.zero_grad();
  tensor::Tensor logits = model.forward(x, true);
  tensor::Tensor dlogits;
  tensor::softmax_cross_entropy(logits, labels, dlogits);
  model.backward(dlogits);

  util::Rng rng(1234);
  int mismatches = 0;
  int total = 0;
  for (const nn::ParamRef& ref : model.param_refs()) {
    for (int k = 0; k < checks; ++k) {
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_int(ref.param->numel()));
      const double analytic = ref.grad->flat()[idx];
      const double numeric =
          numerical_derivative(&ref.param->flat()[idx], loss_fn, 2e-3F);
      ++total;
      if (!grad_close(analytic, numeric, tol, 3e-3)) ++mismatches;
    }
  }
  // Verified cause of disagreements in this suite: preactivations within
  // the finite-difference window of a ReLU kink (e.g. z = 1.5e-4), where
  // the central difference averages the two one-sided slopes.
  EXPECT_LE(mismatches, std::max(1, total * 3 / 20))
      << mismatches << " of " << total << " sampled gradients disagree";
}

TEST(GradCheck, MlpModelThroughLoss) {
  nn::Model model = models::make_mlp({1, 4, 4, 3}, 77, 10);
  util::Rng rng(22);
  tensor::Tensor x = tensor::Tensor::randn({5, 1, 4, 4}, rng);
  const std::vector<int> labels{0, 2, 1, 2, 0};
  model_gradcheck(model, x, labels, 6, 8e-2);
}

TEST(GradCheck, LeNetThroughLossMasked) {
  models::InputSpec in{1, 12, 12, 4};
  nn::Model model = models::make_lenet(in, 78);
  // Mask a third of the neurons.
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(model.neuron_total()), 1);
  for (std::size_t j = 0; j < mask.size(); j += 3) mask[j] = 0;
  model.set_neuron_mask(mask);
  util::Rng rng(23);
  tensor::Tensor x = tensor::Tensor::randn({3, 1, 12, 12}, rng);
  const std::vector<int> labels{1, 3, 0};
  model_gradcheck(model, x, labels, 4, 1e-1);
}

TEST(GradCheck, ResNetLiteThroughLoss) {
  models::InputSpec in{3, 8, 8, 4};
  nn::Model model = models::make_resnet18_lite(in, 79, 4, 1);
  util::Rng rng(24);
  tensor::Tensor x = tensor::Tensor::randn({4, 3, 8, 8}, rng);
  const std::vector<int> labels{0, 1, 2, 3};
  model_gradcheck(model, x, labels, 3, 1.5e-1);
}

}  // namespace
}  // namespace helios
