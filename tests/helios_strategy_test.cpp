#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios::core {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

TEST(HeliosStrategy, NameReflectsAblation) {
  HeliosConfig cfg;
  EXPECT_EQ(HeliosStrategy(cfg).name(), "Helios");
  cfg.hetero_aggregation = false;
  EXPECT_EQ(HeliosStrategy(cfg).name(), "S.T. Only");
}

TEST(HeliosStrategy, RunsRequestedCycles) {
  fl::Fleet fleet = make_fleet();
  HeliosStrategy strategy;
  const fl::RunResult res = strategy.run(fleet, 4);
  ASSERT_EQ(res.rounds.size(), 4u);
  for (std::size_t i = 1; i < res.rounds.size(); ++i) {
    EXPECT_GT(res.rounds[i].virtual_time, res.rounds[i - 1].virtual_time);
  }
}

TEST(HeliosStrategy, FasterThanSyncInVirtualTime) {
  fl::Fleet a = make_fleet();
  fl::Fleet b = make_fleet();
  const double sync_time = fl::SyncFL().run(a, 3).rounds.back().virtual_time;
  const double helios_time = HeliosStrategy().run(b, 3).rounds.back().virtual_time;
  EXPECT_LT(helios_time, sync_time);
}

TEST(HeliosStrategy, PaceAdaptationPullsStragglersTowardPace) {
  FleetOptions o;
  o.volume = 0.9;  // deliberately too large for the slow devices
  fl::Fleet fleet = make_fleet(o);
  HeliosConfig cfg;
  cfg.pace_adaptation_cycles = 3;
  HeliosStrategy strategy(cfg);
  strategy.run(fleet, 4);
  // After adaptation the straggler volume must have shrunk from 0.9.
  for (auto* s : fleet.stragglers()) {
    EXPECT_LT(s->volume(), 0.9);
  }
}

TEST(HeliosStrategy, NoAdaptationKeepsVolumes) {
  FleetOptions o;
  o.volume = 0.4;
  fl::Fleet fleet = make_fleet(o);
  HeliosConfig cfg;
  cfg.pace_adaptation_cycles = 0;
  HeliosStrategy strategy(cfg);
  strategy.run(fleet, 3);
  for (auto* s : fleet.stragglers()) {
    EXPECT_DOUBLE_EQ(s->volume(), 0.4);
  }
}

TEST(HeliosStrategy, CycleHookRunsEveryCycle) {
  fl::Fleet fleet = make_fleet();
  HeliosStrategy strategy;
  int calls = 0;
  strategy.set_cycle_hook([&](fl::Fleet&, int) { ++calls; });
  strategy.run(fleet, 5);
  EXPECT_EQ(calls, 5);
}

TEST(HeliosStrategy, RotationKeepsWorstCaseStalenessBounded) {
  FleetOptions o;
  o.volume = 0.25;
  fl::Fleet fleet = make_fleet(o);
  HeliosConfig cfg;
  cfg.pace_adaptation_cycles = 0;
  HeliosStrategy strategy(cfg);

  // Track per-cycle straggler masks via the hook + client inspection is not
  // possible post-hoc, so run many cycles and verify convergence is not
  // degenerate instead; the regulator unit tests cover staleness bounds.
  const fl::RunResult res = strategy.run(fleet, 8);
  EXPECT_EQ(res.rounds.size(), 8u);
}

TEST(HeliosStrategy, LearnsOnIidTask) {
  FleetOptions o;
  o.samples_per_client = 64;
  fl::Fleet fleet = make_fleet(o);
  HeliosStrategy strategy;
  const fl::RunResult res = strategy.run(fleet, 12);
  EXPECT_GT(res.final_accuracy(3), 1.5 / o.classes)
      << "Helios failed to beat chance";
}

TEST(HeliosStrategy, StragglerUploadsShrink) {
  // Straggler cycle time under Helios is below its full-model cycle time.
  FleetOptions o;
  o.volume = 0.3;
  fl::Fleet fleet = make_fleet(o);
  const double full = fleet.client(3).estimate_cycle_seconds({});
  HeliosConfig cfg;
  cfg.pace_adaptation_cycles = 0;
  HeliosStrategy strategy(cfg);
  const fl::RunResult res = strategy.run(fleet, 2);
  // Round time = max participant; stragglers shrunk, so the round is
  // strictly below the full straggler cycle.
  EXPECT_LT(res.rounds[0].virtual_time, full);
}

}  // namespace
}  // namespace helios::core
