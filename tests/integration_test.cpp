// End-to-end federated learning comparisons on a small synthetic task.
// These assert the qualitative shape of the paper's results with generous
// margins (exact accuracy comparisons live in the benchmark harness).
#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

FleetOptions task() {
  FleetOptions o;
  o.samples_per_client = 64;
  o.volume = 0.35;
  return o;
}

TEST(Integration, SyncFLLearnsAboveChance) {
  fl::Fleet fleet = make_fleet(task());
  const fl::RunResult res = fl::SyncFL().run(fleet, 12);
  EXPECT_GT(res.final_accuracy(3), 0.40);  // chance = 0.25
}

TEST(Integration, HeliosLearnsAboveChance) {
  fl::Fleet fleet = make_fleet(task());
  const fl::RunResult res = core::HeliosStrategy().run(fleet, 12);
  EXPECT_GT(res.final_accuracy(3), 0.40);
}

TEST(Integration, HeliosFasterThanSyncToSameAccuracy) {
  fl::Fleet a = make_fleet(task());
  fl::Fleet b = make_fleet(task());
  const fl::RunResult sync_res = fl::SyncFL().run(a, 12);
  const fl::RunResult helios_res = core::HeliosStrategy().run(b, 12);
  const double target = 0.40;
  const double t_sync = sync_res.time_to_accuracy(target);
  const double t_helios = helios_res.time_to_accuracy(target);
  ASSERT_NE(t_helios, fl::RunResult::never);
  if (t_sync != fl::RunResult::never) {
    EXPECT_LT(t_helios, t_sync);
  }
}

TEST(Integration, HeliosBeatsAsyncAccuracy) {
  fl::Fleet a = make_fleet(task());
  fl::Fleet b = make_fleet(task());
  const fl::RunResult async_res = fl::AsyncFL().run(a, 12);
  const fl::RunResult helios_res = core::HeliosStrategy().run(b, 12);
  EXPECT_GE(helios_res.final_accuracy(3), async_res.final_accuracy(3) - 0.05);
}

TEST(Integration, FullPipelineFromIdentificationToTraining) {
  // The complete Helios flow: build fleet -> identify -> determine targets
  // -> soft-train. No manual flags or volumes.
  FleetOptions o = task();
  fl::Fleet fleet = make_fleet(o);
  for (auto& c : fleet.clients()) {
    c->set_straggler(false);  // wipe helper flags; run the real pipeline
    c->set_volume(1.0);
  }
  const auto report = core::StragglerIdentifier::resource_based(fleet, 1.5);
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report);
  EXPECT_EQ(fleet.stragglers().size(), 2u);
  for (auto* s : fleet.stragglers()) {
    EXPECT_LT(s->volume(), 1.0);
  }
  const fl::RunResult res = core::HeliosStrategy().run(fleet, 10);
  EXPECT_GT(res.final_accuracy(3), 0.35);
}

TEST(Integration, NonIidStragglersCarryUniqueInformation) {
  // With a shard split, dropping stragglers (async) must cost accuracy
  // relative to Helios, which keeps them synchronized.
  FleetOptions o = task();
  o.non_iid = true;
  o.samples_per_client = 64;
  fl::Fleet a = make_fleet(o);
  fl::Fleet b = make_fleet(o);
  const fl::RunResult helios_res = core::HeliosStrategy().run(a, 14);
  const fl::RunResult async_res = fl::AsyncFL().run(b, 14);
  EXPECT_GE(helios_res.final_accuracy(3), async_res.final_accuracy(3) - 0.02);
}

TEST(Integration, StaticPruneNeverTrainsPrunedNeurons) {
  FleetOptions o = task();
  fl::Fleet fleet = make_fleet(o);
  const auto g0 = fleet.server().global();
  fl::StaticPrune().run(fleet, 6);
  // With permanent pruning and no rotation, some neuron-owned parameters of
  // the stragglers' pruned set can only have been trained by capable
  // devices — this is the information-loss mechanism; here we simply verify
  // the run completes and the global changed.
  EXPECT_NE(fleet.server().global(), g0);
}

TEST(Integration, BatchNormStatisticsReachTheServer) {
  // Regression test for the largest bring-up bug: BatchNorm running stats
  // are state, not parameters — if clients don't ship them, the server
  // evaluates the global model with init-time statistics and a BN network
  // never rises above chance.
  data::SyntheticSpec spec;
  spec.samples = 160;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.classes = 4;
  spec.noise = 0.3F;
  util::Rng rng(61);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 120;
  data::Dataset test = data::make_synthetic(spec, rng);
  fl::Fleet fleet(models::resnet18_lite_spec({3, 8, 8, 4}, 4, 1),
                  std::move(test), 61);
  util::Rng prng(62);
  const auto parts = data::partition_iid(160, 2, prng);
  for (int i = 0; i < 2; ++i) {
    fl::ClientConfig cfg;
    cfg.seed = 70 + static_cast<std::uint64_t>(i);
    cfg.lr = 0.05F;
    cfg.batch_size = 16;
    fleet.add_client(data::subset(train, parts[static_cast<std::size_t>(i)]),
                     cfg, device::sim_scaled(device::edge_server()));
  }
  const auto buffers_before = fleet.server().global_buffers();
  ASSERT_FALSE(buffers_before.empty());
  const fl::RunResult res = fl::SyncFL().run(fleet, 8);
  EXPECT_NE(fleet.server().global_buffers(), buffers_before)
      << "client BatchNorm statistics never reached the server";
  EXPECT_GT(res.final_accuracy(3), 0.40);  // chance = 0.25
}

TEST(Integration, DeterministicGivenSeeds) {
  fl::Fleet a = make_fleet(task());
  fl::Fleet b = make_fleet(task());
  const fl::RunResult ra = core::HeliosStrategy().run(a, 5);
  const fl::RunResult rb = core::HeliosStrategy().run(b, 5);
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.rounds[i].test_accuracy, rb.rounds[i].test_accuracy);
    EXPECT_DOUBLE_EQ(ra.rounds[i].virtual_time, rb.rounds[i].virtual_time);
  }
}

}  // namespace
}  // namespace helios
