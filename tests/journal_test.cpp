// Run-journal (flight recorder) tests: schema stability of the JSONL
// stream, write -> parse -> replay round trips whose summaries are
// bit-identical across thread counts, the zero-allocation disabled path,
// and the 256-device long-tail churn acceptance run whose replayed
// dashboard must match the live one byte for byte.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/helios_strategy.h"
#include "obs/journal.h"
#include "obs/journal_reader.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "sim/sampler.h"
#include "test_support.h"
#include "util/thread_pool.h"

// ---- Allocation counting for the disabled-path test --------------------
// Same global-override pattern as obs_test.cpp: the test compares counts
// around the instrumented region only.
namespace {
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace helios {
namespace {

struct RunArtifacts {
  std::string journal;
  std::string dashboard;  // the live run's rendering
};

/// A short Helios run over the small test fleet, journal in memory.
RunArtifacts run_with_threads(int threads) {
  util::set_global_threads(threads);
  obs::TelemetryConfig cfg;
  cfg.tracing = false;
  cfg.journal = true;
  obs::TelemetrySink sink(cfg);
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&sink);
  core::HeliosStrategy strategy;
  strategy.run(fleet, 3);
  fleet.set_telemetry(nullptr);
  sink.flush();  // closes the journal (run_end)
  RunArtifacts a;
  a.journal = sink.journal_text();
  std::ostringstream dash;
  sink.render_dashboard(dash);
  a.dashboard = dash.str();
  util::set_global_threads(0);
  return a;
}

// ---- Round trip + thread-count invariance -------------------------------

TEST(RunJournalTest, RoundTripSummaryIsBitIdenticalAcrossThreadCounts) {
  const RunArtifacts one = run_with_threads(1);
  const RunArtifacts four = run_with_threads(4);

  std::istringstream is1(one.journal), is4(four.journal);
  const std::vector<obs::JournalEvent> ev1 = obs::read_journal(is1);
  const std::vector<obs::JournalEvent> ev4 = obs::read_journal(is4);
  ASSERT_FALSE(ev1.empty());
  // Same events, possibly interleaved differently across devices.
  EXPECT_EQ(ev1.size(), ev4.size());

  // Summaries aggregate per device before comparing, so they must agree on
  // every compared field (the diff ignores wall clock, which always varies).
  obs::JournalSummary s1 = obs::summarize_journal(ev1);
  obs::JournalSummary s4 = obs::summarize_journal(ev4);
  std::ostringstream diff;
  EXPECT_EQ(obs::write_diff(diff, s1, s4), 0) << diff.str();

  // Rendering the summaries (wall clock zeroed) is bit-identical.
  s1.wall_seconds = s4.wall_seconds = 0.0;
  std::ostringstream t1, t4, j1, j4;
  obs::write_summary(t1, s1);
  obs::write_summary(t4, s4);
  EXPECT_EQ(t1.str(), t4.str());
  obs::write_summary_json(j1, s1);
  obs::write_summary_json(j4, s4);
  EXPECT_EQ(j1.str(), j4.str());

  // And replaying either journal reconstructs its live dashboard exactly.
  obs::StragglerDashboard d1, d4;
  obs::replay_dashboard(ev1, d1);
  obs::replay_dashboard(ev4, d4);
  std::ostringstream r1, r4;
  d1.render(r1);
  d4.render(r4);
  EXPECT_EQ(r1.str(), one.dashboard);
  EXPECT_EQ(r4.str(), four.dashboard);
}

// ---- Schema stability ---------------------------------------------------

TEST(RunJournalTest, SchemaV1FieldsAreStable) {
  ASSERT_EQ(obs::RunJournal::kSchemaVersion, 1);
  obs::TelemetryConfig cfg;
  cfg.tracing = false;
  cfg.journal = true;
  obs::TelemetrySink sink(cfg);
  ASSERT_NE(sink.journal(), nullptr);

  sink.set_cycle(2);
  sink.set_virtual_time(1.5);
  sink.record_cohort(2, 64, 60, 6);
  sink.record_device_skipped(2, 9, /*dead=*/false);
  sink.record_device_skipped(2, 10, /*dead=*/true);
  sink.record_client_cycle(3, "jetson", true, 0.4, 10, 24, 2.0, 0.5, 1.25,
                           0.7);
  sink.record_aggregation_weight(3, 0.4167, 0.21);
  sink.record_rotation(3, 2, {20, 3, 1, 0});
  sink.record_device_transfer(3, 4096, 2, 1, true, false, false, 0.6);
  sink.record_network_round(8192, 4, 3, 1, 1, 0, 0);
  sink.record_churn(2, 1, 2, 63);
  sink.record_cycle_result("Helios", 2, 1.5, 0.81, 0.42, 2.5);
  sink.flush();

  std::istringstream is(sink.journal_text());
  const std::vector<obs::JournalEvent> events = obs::read_journal(is);
  ASSERT_GE(events.size(), 12U);  // run_start + 10 recorded + run_end

  // Every line carries the stamp fields.
  for (const obs::JournalEvent& ev : events) {
    EXPECT_NE(ev.fields.find("v"), nullptr);
    EXPECT_NE(ev.fields.find("t"), nullptr);
    EXPECT_NE(ev.fields.find("r"), nullptr);
    EXPECT_NE(ev.fields.find("dev"), nullptr);
    EXPECT_NE(ev.fields.find("vt"), nullptr);
    EXPECT_NE(ev.fields.find("w"), nullptr);
  }
  EXPECT_EQ(events.front().type, "run_start");
  EXPECT_EQ(events.back().type, "run_end");
  EXPECT_EQ(events.back().fields.number_or("events", 0.0),
            static_cast<double>(events.size()));

  auto find = [&](const std::string& type) -> const obs::JournalEvent* {
    for (const obs::JournalEvent& ev : events) {
      if (ev.type == type) return &ev;
    }
    return nullptr;
  };
  const obs::JournalEvent* cohort = find("cohort");
  ASSERT_NE(cohort, nullptr);
  EXPECT_EQ(cohort->fields.number_or("pop", 0), 64.0);
  EXPECT_EQ(cohort->fields.number_or("act", 0), 60.0);
  EXPECT_EQ(cohort->fields.number_or("sam", 0), 6.0);

  const obs::JournalEvent* train = find("train");
  ASSERT_NE(train, nullptr);
  EXPECT_EQ(train->device, 3);
  EXPECT_EQ(train->round, 2);
  EXPECT_EQ(train->fields.string_or("prof", ""), "jetson");
  EXPECT_EQ(train->fields.number_or("strag", 0), 1.0);
  EXPECT_EQ(train->fields.number_or("vol", 0), 0.4);
  EXPECT_EQ(train->fields.number_or("mask", 0), 10.0);
  EXPECT_EQ(train->fields.number_or("tot", 0), 24.0);
  EXPECT_EQ(train->fields.number_or("train_s", 0), 2.0);
  EXPECT_EQ(train->fields.number_or("up_s", 0), 0.5);
  EXPECT_EQ(train->fields.number_or("up_mb", 0), 1.25);
  EXPECT_EQ(train->fields.number_or("loss", 0), 0.7);

  const obs::JournalEvent* xfer = find("xfer");
  ASSERT_NE(xfer, nullptr);
  EXPECT_EQ(xfer->fields.number_or("bytes", 0), 4096.0);
  EXPECT_EQ(xfer->fields.number_or("tx", 0), 2.0);
  EXPECT_EQ(xfer->fields.number_or("lost", 0), 1.0);
  EXPECT_EQ(xfer->fields.number_or("ok", 0), 1.0);
  EXPECT_EQ(xfer->fields.number_or("miss", 1), 0.0);
  EXPECT_EQ(xfer->fields.number_or("dead", 1), 0.0);

  const obs::JournalEvent* net = find("net_round");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->fields.number_or("n", 0), 4.0);
  EXPECT_EQ(net->fields.number_or("okn", 0), 3.0);
  EXPECT_EQ(net->fields.number_or("renorm", 0), 1.0);  // 3 < 4 participants

  const obs::JournalEvent* round = find("round");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->fields.string_or("strat", ""), "Helios");
  EXPECT_EQ(round->fields.number_or("acc", 0), 0.81);

  // Skip events carry the reason, and the counter is labeled to match.
  int hollow = 0, dead = 0;
  for (const obs::JournalEvent& ev : events) {
    if (ev.type != "skip") continue;
    if (ev.fields.string_or("why", "") == "hollow") ++hollow;
    if (ev.fields.string_or("why", "") == "dead") ++dead;
  }
  EXPECT_EQ(hollow, 1);
  EXPECT_EQ(dead, 1);
  EXPECT_EQ(sink.metrics()
                .counter("helios.sim.skipped_total", {{"reason", "hollow"}})
                .value(),
            1.0);
  EXPECT_EQ(sink.metrics()
                .counter("helios.sim.skipped_total", {{"reason", "dead"}})
                .value(),
            1.0);
}

TEST(RunJournalTest, UnsupportedSchemaVersionIsRejected) {
  std::istringstream is(
      "{\"v\":99,\"t\":\"run_start\",\"r\":-1,\"dev\":-1,\"vt\":0,\"w\":0}\n");
  EXPECT_THROW(obs::read_journal(is), std::runtime_error);
  std::istringstream garbage("{not json\n");
  EXPECT_THROW(obs::read_journal(garbage), std::runtime_error);
}

// ---- Disabled path ------------------------------------------------------

TEST(RunJournalTest, DisabledJournalMakesNoAllocations) {
  // TelemetryConfig::journal = false leaves the sink without a journal.
  obs::TelemetrySink plain;
  EXPECT_EQ(plain.journal(), nullptr);
  EXPECT_TRUE(plain.journal_text().empty());

  // A null-stream journal's record methods return after one branch.
  obs::RunJournal off(nullptr);
  EXPECT_FALSE(off.enabled());
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) {
    off.cohort({i, -1, 0.0}, 64, 60, 6);
    off.skip({i, 1, 0.0}, "hollow");
    off.train({i, 1, 0.0}, "profile", false, 1.0, 24, 24, 1.0, 0.1, 0.5,
              0.9);
    off.transfer({i, 1, 0.0}, 2048, 1, 0, true, false, false, 0.1);
    off.aggregation({i, 1, 0.0}, 0.5, 0.25);
    off.rotation({i, 1, 0.0}, 1, 20, 2, 1, 1);
    off.network_round({i, -1, 0.0}, 8192, 4, 4, 0, 0, 0, 0, false);
    off.churn({i, -1, 0.0}, 0, 1, 63);
    off.round_result({i, -1, 0.0}, "Helios", 0.8, 0.4, 2.0);
  }
  off.close();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(off.event_count(), 0U);
}

// ---- Artifact files -----------------------------------------------------

TEST(RunJournalTest, ArtifactPrefixWritesJournalAndSummaryFiles) {
  const std::string prefix = ::testing::TempDir() + "journal_artifacts";
  {
    obs::TelemetryConfig cfg;
    cfg.tracing = false;
    cfg.journal = true;
    cfg.artifact_prefix = prefix;
    obs::TelemetrySink sink(cfg);
    fl::Fleet fleet = testing::make_fleet();
    fleet.set_telemetry(&sink);
    core::HeliosStrategy strategy;
    strategy.run(fleet, 2);
    fleet.set_telemetry(nullptr);
    sink.flush();
  }
  std::ifstream journal(prefix + ".journal.jsonl");
  ASSERT_TRUE(journal.good());
  const std::vector<obs::JournalEvent> events = obs::read_journal(journal);
  EXPECT_GT(events.size(), 10U);
  EXPECT_EQ(events.back().type, "run_end");

  // flush() also writes the dashboard percentile summary and samples the
  // process RSS gauges.
  std::ifstream summary(prefix + ".summary.json");
  ASSERT_TRUE(summary.good());
  std::ostringstream buf;
  buf << summary.rdbuf();
  const util::JsonValue v = util::JsonValue::parse(buf.str());
  EXPECT_EQ(v.number_or("devices", 0.0), 4.0);
  EXPECT_NE(v.find("metrics"), nullptr);
}

// ---- Acceptance: 256-device long-tail churn run -------------------------

TEST(RunJournalTest, LongtailChurnRunReplaysToLiveDashboard) {
  const int kDevices = 256;
  const int kCycles = 3;
  obs::TelemetryConfig cfg;
  cfg.tracing = false;
  cfg.journal = true;
  obs::TelemetrySink telemetry(cfg);
  const sim::PopulationGenerator pop(sim::mobile_longtail(kDevices));
  fl::Fleet fleet = sim::build_fleet(pop);
  fleet.set_telemetry(&telemetry);

  sim::CohortSampler::Options sopts;
  sopts.fraction = 4.0 / kDevices;
  sopts.seed = 17;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 30.0;
  copts.mean_lifetime_s = 2.0;
  copts.seed = 7;
  copts.max_devices = kDevices + 16;
  sim::ChurnProcess churn(pop, copts);
  core::HeliosStrategy strategy;
  strategy.set_cycle_hook(
      [&](fl::Fleet& f, int cycle) { churn.step(f, cycle); });

  strategy.run(fleet, kCycles);
  fleet.set_sampler(nullptr);
  fleet.set_telemetry(nullptr);
  telemetry.flush();

  // Parseable JSONL end to end (read_journal throws on a malformed line).
  std::istringstream is(telemetry.journal_text());
  const std::vector<obs::JournalEvent> events = obs::read_journal(is);
  ASSERT_GT(events.size(), static_cast<std::size_t>(kDevices));

  // Every round journals its cohort, and unsampled devices journal skips —
  // the whole population appears in the event stream.
  std::set<int> seen;
  int cohorts = 0;
  for (const obs::JournalEvent& ev : events) {
    if (ev.type == "cohort") ++cohorts;
    if (ev.device >= 0) seen.insert(ev.device);
  }
  EXPECT_EQ(cohorts, kCycles);
  EXPECT_GE(seen.size(), static_cast<std::size_t>(kDevices));

  // The replayed dashboard renders the same fleet percentile summary the
  // live run shows.
  obs::StragglerDashboard replayed;
  obs::replay_dashboard(events, replayed);
  std::ostringstream live, offline;
  telemetry.render_dashboard(live);
  replayed.render(offline);
  EXPECT_EQ(live.str(), offline.str());

  // And the journal summary agrees with the live skip accounting.
  const obs::JournalSummary s = obs::summarize_journal(events);
  double skipped = 0.0;
  for (const auto& [id, d] : s.devices) {
    skipped += d.skipped_hollow + d.skipped_dead;
  }
  const double live_skips =
      telemetry.metrics()
          .counter("helios.sim.skipped_total", {{"reason", "hollow"}})
          .value() +
      telemetry.metrics()
          .counter("helios.sim.skipped_total", {{"reason", "dead"}})
          .value();
  EXPECT_EQ(skipped, live_skips);
}

}  // namespace
}  // namespace helios
