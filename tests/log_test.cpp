#include <gtest/gtest.h>

#include "util/log.h"

namespace helios::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmitBelowThresholdIsSilentlyDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Nothing observable to assert on stderr here without capturing it; the
  // contract is simply that these calls are safe at any level.
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped");
  set_log_level(LogLevel::kOff);
  log_error("dropped even as error");
  SUCCEED();
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

TEST(Log, ContextProviderPrefixesEmittedLines) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  set_log_context_provider([] { return std::string("cycle=3 device=1"); });
  ::testing::internal::CaptureStderr();
  log_info("hello");
  const std::string with_context = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(with_context.find("[cycle=3 device=1]"), std::string::npos)
      << with_context;
  EXPECT_NE(with_context.find("hello"), std::string::npos);

  // An empty provider result adds no prefix; a null provider clears it.
  set_log_context_provider([] { return std::string(); });
  ::testing::internal::CaptureStderr();
  log_info("plain");
  // Only the level tag, no second context bracket.
  EXPECT_EQ(::testing::internal::GetCapturedStderr().find("] ["),
            std::string::npos);
  set_log_context_provider(nullptr);
  ::testing::internal::CaptureStderr();
  log_info("cleared");
  const std::string cleared = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(cleared.find("cleared"), std::string::npos);
}

}  // namespace
}  // namespace helios::util
