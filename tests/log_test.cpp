#include <gtest/gtest.h>

#include "util/log.h"

namespace helios::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmitBelowThresholdIsSilentlyDropped) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Nothing observable to assert on stderr here without capturing it; the
  // contract is simply that these calls are safe at any level.
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped");
  set_log_level(LogLevel::kOff);
  log_error("dropped even as error");
  SUCCEED();
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

}  // namespace
}  // namespace helios::util
