#include <gtest/gtest.h>

#include <sstream>

#include "fl/metrics.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios::fl {
namespace {

RunResult sample_run() {
  RunResult r;
  r.method = "Helios";
  r.rounds = {{0, 0.5, 0.2, 1.2, 3.0}, {1, 1.0, 0.6, 0.8, 3.0}};
  return r;
}

TEST(MetricsCsv, SingleRunFormat) {
  std::ostringstream os;
  sample_run().write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("cycle,virtual_time_s,test_accuracy"), std::string::npos);
  EXPECT_NE(out.find("0,0.5,0.2,1.2,3"), std::string::npos);
  EXPECT_NE(out.find("1,1,0.6,0.8,3"), std::string::npos);
}

TEST(MetricsCsv, ComparisonAlignsByCycle) {
  RunResult a = sample_run();
  RunResult b = sample_run();
  b.method = "Syn. FL";
  b.rounds.push_back({2, 1.5, 0.7, 0.5, 3.0});
  std::ostringstream os;
  RunResult::write_comparison_csv(os, {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find("cycle,Helios,Syn. FL"), std::string::npos);
  // Cycle 2 exists only for run b: the Helios column is empty.
  EXPECT_NE(out.find("2,,0.7"), std::string::npos);
}

TEST(SyncPartialParticipation, SamplesSubsetAndStillLearns) {
  helios::testing::FleetOptions o;
  o.clients = 4;
  o.stragglers = 0;
  o.samples_per_client = 64;
  Fleet fleet = helios::testing::make_fleet(o);
  SyncFL strategy(0.5);
  EXPECT_EQ(strategy.name().substr(0, 10), "Syn. FL (C");
  const RunResult res = strategy.run(fleet, 10);
  EXPECT_EQ(res.rounds.size(), 10u);
  EXPECT_GT(res.final_accuracy(3), 0.35);
  // Half participation -> roughly half the per-cycle upload volume.
  Fleet full_fleet = helios::testing::make_fleet(o);
  const RunResult full = SyncFL().run(full_fleet, 10);
  EXPECT_LT(res.total_upload_mb(), 0.7 * full.total_upload_mb());
}

TEST(SyncPartialParticipation, Validation) {
  EXPECT_THROW(SyncFL(0.0), std::invalid_argument);
  EXPECT_THROW(SyncFL(1.5), std::invalid_argument);
}

TEST(LrDecay, AppliedPerCycle) {
  helios::testing::FleetOptions o;
  o.clients = 1;
  o.stragglers = 0;
  Fleet fleet = helios::testing::make_fleet(o);
  Client& c = fleet.client(0);
  EXPECT_FLOAT_EQ(c.current_lr(), c.config().lr);
  const auto base = fleet.server().global();
  const auto buffers = fleet.server().global_buffers();
  c.run_cycle(base, buffers, {});
  // Default decay 1.0: unchanged.
  EXPECT_FLOAT_EQ(c.current_lr(), c.config().lr);
  EXPECT_EQ(c.cycles_completed(), 1);
}

TEST(LrDecay, GeometricSchedule) {
  ClientConfig cfg;
  cfg.lr = 0.1F;
  cfg.lr_decay = 0.5F;
  cfg.batch_size = 8;
  Client c(0, models::mlp_spec({1, 8, 8, 4}, 16),
           helios::testing::tiny_dataset(16), cfg,
           device::sim_scaled(device::edge_server()));
  const auto base = c.model().params_flat();
  const auto buffers = c.model().buffers_flat();
  EXPECT_FLOAT_EQ(c.current_lr(), 0.1F);
  c.run_cycle(base, buffers, {});
  EXPECT_FLOAT_EQ(c.current_lr(), 0.05F);
  c.run_cycle(base, buffers, {});
  EXPECT_FLOAT_EQ(c.current_lr(), 0.025F);
}

}  // namespace
}  // namespace helios::fl
