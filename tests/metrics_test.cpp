// RunResult edge cases: empty and short traces must stay well-defined (the
// tail windows clamp instead of reading out of range).
#include <gtest/gtest.h>

#include "fl/metrics.h"

namespace helios {
namespace {

fl::RunResult make_run(std::initializer_list<double> accuracies) {
  fl::RunResult r;
  r.method = "test";
  int cycle = 0;
  for (double a : accuracies) {
    r.rounds.push_back({cycle, static_cast<double>(cycle) * 2.0, a, 0.5, 1.0});
    ++cycle;
  }
  return r;
}

TEST(RunResultTest, EmptyTraceIsZero) {
  const fl::RunResult r;
  EXPECT_EQ(r.final_accuracy(), 0.0);
  EXPECT_EQ(r.final_accuracy(0), 0.0);
  EXPECT_EQ(r.accuracy_variance(), 0.0);
  EXPECT_EQ(r.total_upload_mb(), 0.0);
  EXPECT_EQ(r.cycles_to_accuracy(0.5), fl::RunResult::npos);
  EXPECT_EQ(r.time_to_accuracy(0.5), fl::RunResult::never);
}

TEST(RunResultTest, SingleRoundTrace) {
  const fl::RunResult r = make_run({0.4});
  // The default tail (3) clamps to the one available round.
  EXPECT_DOUBLE_EQ(r.final_accuracy(), 0.4);
  EXPECT_DOUBLE_EQ(r.final_accuracy(10), 0.4);
  // Variance needs at least two rounds.
  EXPECT_EQ(r.accuracy_variance(), 0.0);
  EXPECT_EQ(r.cycles_to_accuracy(0.4), 0U);
  EXPECT_DOUBLE_EQ(r.time_to_accuracy(0.4), 0.0);
}

TEST(RunResultTest, TailClampsToTraceLength) {
  const fl::RunResult r = make_run({0.2, 0.4});
  EXPECT_DOUBLE_EQ(r.final_accuracy(3), 0.3);
  EXPECT_DOUBLE_EQ(r.final_accuracy(100), 0.3);
  // tail = 0 still averages at least the last round.
  EXPECT_DOUBLE_EQ(r.final_accuracy(0), 0.4);
}

TEST(RunResultTest, VarianceTailClamps) {
  const fl::RunResult r = make_run({0.1, 0.3});
  // Default tail 10 > 2 rounds: population variance of {0.1, 0.3} = 0.01.
  EXPECT_NEAR(r.accuracy_variance(), 0.01, 1e-12);
  // tail < 2 widens to 2 rather than degenerating.
  EXPECT_NEAR(r.accuracy_variance(1), 0.01, 1e-12);
  EXPECT_NEAR(r.accuracy_variance(0), 0.01, 1e-12);
}

TEST(RunResultTest, FinalAccuracyUsesLastRounds) {
  const fl::RunResult r = make_run({0.0, 0.0, 0.6, 0.6, 0.6});
  EXPECT_DOUBLE_EQ(r.final_accuracy(3), 0.6);
  EXPECT_DOUBLE_EQ(r.final_accuracy(5), 0.36);
}

TEST(RunResultTest, NeverReachedTarget) {
  const fl::RunResult r = make_run({0.1, 0.2, 0.3});
  EXPECT_EQ(r.cycles_to_accuracy(0.9), fl::RunResult::npos);
  EXPECT_EQ(r.time_to_accuracy(0.9), fl::RunResult::never);
  EXPECT_EQ(r.cycles_to_accuracy(0.2), 1U);
  EXPECT_DOUBLE_EQ(r.time_to_accuracy(0.2), 2.0);
}

}  // namespace
}  // namespace helios
