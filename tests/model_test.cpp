// Model container: parameter flattening, neuron index, mask distribution,
// frozen-parameter bookkeeping, FLOP accounting.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "models/zoo.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/model.h"
#include "nn/sgd.h"

namespace helios::nn {
namespace {

using tensor::Tensor;

Model small_model(std::uint64_t seed = 3) {
  return models::make_mlp({1, 3, 3, 4}, seed, 6);
}

TEST(Model, ParamRoundTrip) {
  Model m = small_model();
  auto flat = m.params_flat();
  EXPECT_EQ(flat.size(), m.param_count());
  // Perturb, reload, verify.
  for (float& v : flat) v += 1.0F;
  m.load_params(flat);
  auto again = m.params_flat();
  EXPECT_EQ(flat, again);
}

TEST(Model, LoadRejectsWrongSize) {
  Model m = small_model();
  std::vector<float> wrong(m.param_count() + 1);
  EXPECT_THROW(m.load_params(wrong), std::invalid_argument);
}

TEST(Model, NeuronIndexCountsMaskableUnitsOnly) {
  Model m = small_model();
  // Hidden dense has 6 maskable units; head (4 classes) is not maskable.
  EXPECT_EQ(m.neuron_total(), 6);
}

TEST(Model, NeuronSlicesAreDisjointAndInRange) {
  models::InputSpec in{1, 12, 12, 5};
  Model m = models::make_lenet(in, 4);
  std::vector<int> owner(m.param_count(), -1);
  for (std::size_t j = 0; j < m.neurons().size(); ++j) {
    for (const FlatSlice& s : m.neurons()[j].slices) {
      ASSERT_LE(s.offset + s.length, m.param_count());
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        EXPECT_EQ(owner[f], -1) << "parameter owned twice";
        owner[f] = static_cast<int>(j);
      }
    }
  }
}

TEST(Model, SetNeuronMaskDistributesToLayers) {
  Model m = small_model();
  std::vector<std::uint8_t> mask(6, 1);
  mask[2] = 0;
  m.set_neuron_mask(mask);
  util::Rng rng(5);
  Tensor x = Tensor::randn({2, 1, 3, 3}, rng);
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.dim(1), 4);  // head unaffected
  // Hidden activations of unit 2 are zero — verify indirectly: unit 2's
  // outgoing weights can be anything, but the model must equal a model
  // whose unit-2 row is zeroed. Easiest check: frozen mask marks its params.
  const auto& frozen = m.frozen_flat_mask();
  const auto& slices = m.neurons()[2].slices;
  for (const FlatSlice& s : slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      EXPECT_EQ(frozen[f], 1);
    }
  }
}

TEST(Model, MaskSizeValidated) {
  Model m = small_model();
  std::vector<std::uint8_t> wrong(5, 1);
  EXPECT_THROW(m.set_neuron_mask(wrong), std::invalid_argument);
}

TEST(Model, ClearMaskRestoresFullFlops) {
  Model m = small_model();
  const double full = m.forward_flops_per_sample();
  std::vector<std::uint8_t> mask(6, 0);
  mask[0] = 1;
  m.set_neuron_mask(mask);
  EXPECT_LT(m.forward_flops_per_sample(), full);
  m.clear_neuron_mask();
  EXPECT_EQ(m.forward_flops_per_sample(), full);
  EXPECT_TRUE(m.frozen_flat_mask().empty());
}

TEST(Model, TrainFlopsIsTripleForward) {
  Model m = small_model();
  EXPECT_DOUBLE_EQ(m.train_flops_per_sample(),
                   3.0 * m.forward_flops_per_sample());
}

TEST(Model, BatchNormFollowsConvMaskThroughLinking) {
  util::Rng rng(6);
  Model m;
  auto& conv = static_cast<Conv2d&>(
      m.add(std::make_unique<Conv2d>(1, 4, 4, 3, 3, 1, 1, rng)));
  auto& bn = static_cast<BatchNorm2d&>(
      m.add(std::make_unique<BatchNorm2d>(3, 4, 4)));
  m.link_follower(bn, conv);
  m.add(std::make_unique<Flatten>(3, 4, 4));
  m.add(std::make_unique<Dense>(48, 2, rng, /*maskable=*/false));
  m.finalize();
  // 3 conv filters are the only neurons; each owns conv row+bias and BN
  // gamma+beta: patch(9) + 1 + 1 + 1 = 12 params.
  EXPECT_EQ(m.neuron_total(), 3);
  EXPECT_EQ(m.neurons()[0].param_count(), 12u);

  std::vector<std::uint8_t> mask{1, 0, 1};
  m.set_neuron_mask(mask);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y = m.forward(x, true);
  EXPECT_EQ(y.dim(1), 2);
}

TEST(Model, FollowerLinkValidation) {
  util::Rng rng(7);
  Model m;
  auto& conv = static_cast<Conv2d&>(
      m.add(std::make_unique<Conv2d>(1, 4, 4, 3, 3, 1, 1, rng)));
  auto& bn = static_cast<BatchNorm2d&>(
      m.add(std::make_unique<BatchNorm2d>(3, 4, 4)));
  auto& bn_wrong = static_cast<BatchNorm2d&>(
      m.add(std::make_unique<BatchNorm2d>(3, 4, 4)));
  // Linking a non-follower as follower fails.
  EXPECT_THROW(m.link_follower(conv, conv), std::invalid_argument);
  // Leader must not itself be a follower.
  EXPECT_THROW(m.link_follower(bn, bn_wrong), std::invalid_argument);
}

TEST(Model, AddAfterFinalizeThrows) {
  Model m = small_model();
  m.finalize();
  util::Rng rng(8);
  EXPECT_THROW(m.add(std::make_unique<Dense>(2, 2, rng)), std::logic_error);
}

TEST(Model, TrainStepReducesLossOnAverage) {
  Model m = small_model(9);
  Sgd opt(0.1F);
  util::Rng rng(10);
  Tensor x = Tensor::randn({16, 1, 3, 3}, rng);
  std::vector<int> labels;
  for (int i = 0; i < 16; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_int(4)));
  }
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    const StepResult r = train_step(m, opt, x, labels);
    if (step == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);  // memorizes a fixed batch
}

TEST(Model, FrozenNeuronsUntouchedByTrainStep) {
  Model m = small_model(11);
  Sgd opt(0.2F);
  std::vector<std::uint8_t> mask(6, 1);
  mask[1] = 0;
  mask[4] = 0;
  m.set_neuron_mask(mask);
  const auto before = m.params_flat();
  util::Rng rng(12);
  Tensor x = Tensor::randn({8, 1, 3, 3}, rng);
  std::vector<int> labels{0, 1, 2, 3, 0, 1, 2, 3};
  for (int step = 0; step < 5; ++step) train_step(m, opt, x, labels);
  const auto after = m.params_flat();
  for (int j : {1, 4}) {
    for (const FlatSlice& s : m.neurons()[static_cast<std::size_t>(j)].slices) {
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        EXPECT_EQ(before[f], after[f]) << "frozen neuron " << j << " moved";
      }
    }
  }
  // Active neurons did move.
  bool moved = false;
  for (const FlatSlice& s : m.neurons()[0].slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      moved |= before[f] != after[f];
    }
  }
  EXPECT_TRUE(moved);
}

TEST(Model, ModelsWithoutBatchNormHaveNoBuffers) {
  Model m = small_model();
  EXPECT_EQ(m.buffer_count(), 0u);
  EXPECT_TRUE(m.buffers_flat().empty());
  EXPECT_NO_THROW(m.load_buffers({}));
}

TEST(Model, BatchNormBuffersRoundTrip) {
  models::InputSpec in{3, 8, 8, 4};
  Model m = models::make_resnet18_lite(in, 21, 4, 1);
  const std::size_t n = m.buffer_count();
  ASSERT_GT(n, 0u);
  std::vector<float> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<float>(i) * 0.5F;
  m.load_buffers(values);
  EXPECT_EQ(m.buffers_flat(), values);
  std::vector<float> wrong(n + 1);
  EXPECT_THROW(m.load_buffers(wrong), std::invalid_argument);
}

TEST(Model, TrainingUpdatesBuffers) {
  models::InputSpec in{3, 8, 8, 4};
  Model m = models::make_resnet18_lite(in, 22, 4, 1);
  Sgd opt(0.05F);
  const auto before = m.buffers_flat();
  util::Rng rng(23);
  Tensor x = Tensor::randn({8, 3, 8, 8}, rng);
  std::vector<int> labels{0, 1, 2, 3, 0, 1, 2, 3};
  train_step(m, opt, x, labels);
  EXPECT_NE(m.buffers_flat(), before);  // running stats moved
}

TEST(Model, EvaluateBatchCountsCorrect) {
  Model m = small_model(13);
  util::Rng rng(14);
  Tensor x = Tensor::randn({6, 1, 3, 3}, rng);
  std::vector<int> labels{0, 0, 0, 0, 0, 0};
  const int correct = evaluate_batch(m, x, labels);
  EXPECT_GE(correct, 0);
  EXPECT_LE(correct, 6);
}

}  // namespace
}  // namespace helios::nn
