// Network simulation subsystem: wire-format round trips (property-style,
// over random masks and models with and without BatchNorm buffers),
// corruption/truncation rejection, channel fault semantics, round-protocol
// retry/deadline accounting, the frame-bytes-vs-analytic-cost agreement the
// cost model relies on, and fleet-level churn (death + late join).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "core/scalability.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/compression.h"
#include "fl/fedprox.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "obs/telemetry.h"
#include "models/zoo.h"
#include "net/channel.h"
#include "net/round_protocol.h"
#include "net/wire.h"
#include "test_support.h"
#include "util/rng.h"

namespace helios {
namespace {

// ---- Wire format -----------------------------------------------------------

struct WireFixture {
  nn::Model model;
  net::WireLayout layout;
  std::vector<float> base;
  std::vector<float> params;
  std::vector<float> buffers;

  explicit WireFixture(const models::ModelSpec& spec, std::uint64_t seed = 3)
      : model(spec.build(seed)), layout(net::make_wire_layout(model)) {
    util::Rng rng(seed * 31 + 7);
    base.resize(layout.param_count);
    params.resize(layout.param_count);
    buffers.resize(layout.buffer_count);
    for (float& v : base) v = static_cast<float>(rng.normal());
    for (float& v : params) v = static_cast<float>(rng.normal());
    for (float& v : buffers) v = static_cast<float>(rng.normal());
  }

  net::WireMessage message(std::span<const std::uint8_t> mask) const {
    net::WireMessage m;
    m.client_id = 42;
    m.sample_count = 1234;
    m.mean_loss = 0.625;
    m.params = params;
    m.buffers = buffers;
    m.neuron_mask = mask;
    return m;
  }

  /// Applies the soft-training contract: parameters of masked-off neurons
  /// stay bit-identical to the base snapshot the client received.
  void freeze_unmasked(std::span<const std::uint8_t> mask) {
    if (mask.empty()) return;
    for (std::size_t f = 0; f < layout.param_count; ++f) {
      const std::uint32_t n = layout.neuron_of[f];
      if (n != net::WireLayout::kCommonParam && mask[n] == 0) {
        params[f] = base[f];
      }
    }
  }
};

void expect_roundtrip(const WireFixture& fx,
                      std::span<const std::uint8_t> mask,
                      const std::vector<std::uint8_t>& frame) {
  const net::DecodedMessage d = net::decode_frame(frame, fx.layout, fx.base);
  EXPECT_EQ(d.client_id, 42);
  EXPECT_EQ(d.sample_count, 1234U);
  EXPECT_EQ(d.mean_loss, 0.625);
  ASSERT_EQ(d.params.size(), fx.layout.param_count);
  EXPECT_EQ(std::memcmp(d.params.data(), fx.params.data(),
                        fx.params.size() * sizeof(float)),
            0)
      << "decoded parameters are not bit-identical";
  ASSERT_EQ(d.buffers.size(), fx.layout.buffer_count);
  if (!fx.buffers.empty()) {
    EXPECT_EQ(std::memcmp(d.buffers.data(), fx.buffers.data(),
                          fx.buffers.size() * sizeof(float)),
              0);
  }
  ASSERT_EQ(d.neuron_mask.size(), mask.size());
  for (std::size_t j = 0; j < mask.size(); ++j) {
    EXPECT_EQ(d.neuron_mask[j] != 0, mask[j] != 0) << "neuron " << j;
  }
}

TEST(WireTest, DenseRoundTripUnmasked) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 24));
  const auto frame = net::encode_frame(fx.message({}), fx.layout);
  EXPECT_EQ(frame.size(), net::dense_frame_bytes(fx.layout, {}));
  expect_roundtrip(fx, {}, frame);
}

TEST(WireTest, DenseRoundTripRandomMasks) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 24));
  util::Rng rng(99);
  const int m = fx.layout.neuron_total;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(m));
    for (auto& b : mask) b = rng.uniform() < 0.5 ? 1 : 0;
    fx.freeze_unmasked(mask);
    const auto frame = net::encode_frame(fx.message(mask), fx.layout);
    EXPECT_EQ(frame.size(), net::dense_frame_bytes(fx.layout, mask));
    expect_roundtrip(fx, mask, frame);
  }
}

TEST(WireTest, EmptyAndFullMasksShipEverything) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 16));
  const std::vector<std::uint8_t> all(
      static_cast<std::size_t>(fx.layout.neuron_total), 1);
  const auto frame_all = net::encode_frame(fx.message(all), fx.layout);
  const auto frame_none = net::encode_frame(fx.message({}), fx.layout);
  // A mask selecting every neuron ships the same payload as no mask, plus
  // the mask bytes themselves.
  EXPECT_EQ(frame_all.size(),
            frame_none.size() +
                net::mask_wire_bytes(fx.layout.neuron_total));
  expect_roundtrip(fx, all, frame_all);
}

TEST(WireTest, AllZeroMaskShipsOnlyCommonParams) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 16));
  const std::vector<std::uint8_t> none(
      static_cast<std::size_t>(fx.layout.neuron_total), 0);
  fx.freeze_unmasked(none);
  const auto frame = net::encode_frame(fx.message(none), fx.layout);
  const std::size_t common =
      static_cast<std::size_t>(std::count(fx.layout.neuron_of.begin(),
                                          fx.layout.neuron_of.end(),
                                          net::WireLayout::kCommonParam));
  EXPECT_EQ(net::dense_payload_count(fx.layout, none), common);
  expect_roundtrip(fx, none, frame);
}

TEST(WireTest, MaskedFrameIsProportionallySmaller) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 48));
  const int m = fx.layout.neuron_total;
  std::vector<std::uint8_t> half(static_cast<std::size_t>(m), 0);
  for (int j = 0; j < m / 2; ++j) half[static_cast<std::size_t>(j)] = 1;
  const std::size_t full = net::dense_frame_bytes(fx.layout, {});
  const std::size_t shrunk = net::dense_frame_bytes(fx.layout, half);
  EXPECT_LT(shrunk, full);
  // The shrunk payload carries at most the common params plus ~half the
  // neuron-owned ones.
  EXPECT_LT(net::dense_payload_count(fx.layout, half),
            fx.layout.param_count);
}

TEST(WireTest, BatchNormBuffersSurviveRoundTrip) {
  WireFixture fx(models::resnet18_lite_spec({3, 16, 16, 10}));
  ASSERT_GT(fx.layout.buffer_count, 0U)
      << "fixture model must carry BatchNorm running statistics";
  const auto frame = net::encode_frame(fx.message({}), fx.layout);
  expect_roundtrip(fx, {}, frame);
}

TEST(WireTest, SparseRoundTripTracksChangedEntries) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 24));
  // Touch only a handful of entries; everything else equals base.
  fx.params = fx.base;
  util::Rng rng(5);
  for (int k = 0; k < 10; ++k) {
    fx.params[static_cast<std::size_t>(
        rng.uniform_int(fx.layout.param_count))] += 1.0F;
  }
  const auto sparse =
      net::encode_frame_sparse(fx.message({}), fx.base, fx.layout);
  const auto dense = net::encode_frame(fx.message({}), fx.layout);
  EXPECT_LT(sparse.size(), dense.size());
  expect_roundtrip(fx, {}, sparse);
  // encode_frame_auto picks the sparse one here...
  EXPECT_EQ(net::encode_frame_auto(fx.message({}), fx.base, fx.layout).size(),
            sparse.size());
  // ...and the dense one when every entry changed.
  for (float& v : fx.params) v += 0.5F;
  EXPECT_EQ(net::encode_frame_auto(fx.message({}), fx.base, fx.layout).size(),
            net::encode_frame(fx.message({}), fx.layout).size());
}

TEST(WireTest, CorruptedCrcIsRejected) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 16));
  auto frame = net::encode_frame(fx.message({}), fx.layout);
  frame[frame.size() / 2] ^= 0x40;
  EXPECT_THROW(net::decode_frame(frame, fx.layout, fx.base), net::WireError);
}

TEST(WireTest, TruncatedFrameIsRejected) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 16));
  auto frame = net::encode_frame(fx.message({}), fx.layout);
  for (std::size_t cut :
       {frame.size() - 1, frame.size() / 2, net::kHeaderBytes - 1,
        std::size_t{3}, std::size_t{0}}) {
    std::vector<std::uint8_t> trunc(frame.begin(),
                                    frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(net::decode_frame(trunc, fx.layout, fx.base), net::WireError)
        << "cut at " << cut;
  }
}

TEST(WireTest, ForeignArchitectureIsRejected) {
  WireFixture fx(models::mlp_spec({1, 8, 8, 4}, 16));
  WireFixture other(models::mlp_spec({1, 8, 8, 4}, 32));
  const auto frame = net::encode_frame(fx.message({}), fx.layout);
  EXPECT_THROW(net::decode_frame(frame, other.layout, other.base),
               net::WireError);
}

TEST(WireTest, Crc32MatchesKnownVector) {
  // IEEE 802.3 CRC of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(net::crc32(digits), 0xCBF43926U);
}

// Satellite: the exact frame byte count and the analytic upload volume
// (upload_mb = shipped params * 4 / 1e6) must agree within 1% for an
// unmasked LeNet update — the wire format's framing overhead is negligible,
// so switching upload_seconds from the analytic M/B_n path to real frame
// bytes does not change the simulated regime.
TEST(WireTest, FrameBytesMatchAnalyticUploadWithinOnePercent) {
  WireFixture fx(models::lenet_spec({1, 28, 28, 10}));
  const auto frame =
      net::encode_frame_auto(fx.message({}), fx.base, fx.layout);
  const double analytic_bytes =
      static_cast<double>(fx.layout.param_count) * 4.0;
  const double wire_bytes = static_cast<double>(frame.size());
  EXPECT_LT(std::abs(wire_bytes - analytic_bytes) / analytic_bytes, 0.01)
      << "wire=" << wire_bytes << " analytic=" << analytic_bytes;
}

// ---- Channel ---------------------------------------------------------------

net::SimulatedChannel make_channel(net::ChannelConfig cfg,
                                   std::uint64_t seed = 77) {
  util::Rng rng(seed);
  return net::SimulatedChannel(cfg, /*fallback_bandwidth_mbps=*/10.0,
                               rng.fork(1));
}

TEST(ChannelTest, IdealTransferMatchesAnalyticTime) {
  net::ChannelConfig cfg;
  cfg.bandwidth_mbps = 10.0;  // MB/s
  auto chan = make_channel(cfg);
  const auto a = chan.try_send(1'000'000, 5.0);
  EXPECT_EQ(a.outcome, net::SimulatedChannel::Attempt::Outcome::kDelivered);
  EXPECT_DOUBLE_EQ(a.finish_s, 5.0 + 0.1);  // 1 MB at 10 MB/s
  EXPECT_EQ(a.bytes, 1'000'000U);
}

TEST(ChannelTest, DeterministicUnderSameSeed) {
  net::ChannelConfig cfg;
  cfg.bandwidth_mbps = 5.0;
  cfg.latency_s = 0.01;
  cfg.jitter_s = 0.05;
  cfg.loss_prob = 0.3;
  auto a = make_channel(cfg, 123);
  auto b = make_channel(cfg, 123);
  for (int i = 0; i < 50; ++i) {
    const auto ra = a.try_send(10'000, i * 1.0);
    const auto rb = b.try_send(10'000, i * 1.0);
    EXPECT_EQ(ra.outcome, rb.outcome) << i;
    EXPECT_EQ(ra.finish_s, rb.finish_s) << i;
  }
}

TEST(ChannelTest, LossRateIsRoughlyRespected) {
  net::ChannelConfig cfg;
  cfg.bandwidth_mbps = 5.0;
  cfg.loss_prob = 0.25;
  auto chan = make_channel(cfg, 2024);
  int lost = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (chan.try_send(1000, i * 1.0).outcome ==
        net::SimulatedChannel::Attempt::Outcome::kLost) {
      ++lost;
    }
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(ChannelTest, OutageBlocksAndDeathIsPermanent) {
  net::ChannelConfig cfg;
  cfg.bandwidth_mbps = 10.0;
  auto chan = make_channel(cfg);
  chan.add_outage(1.0, 2.0);
  chan.set_death(10.0);

  const auto blocked = chan.try_send(1000, 1.5);
  EXPECT_EQ(blocked.outcome,
            net::SimulatedChannel::Attempt::Outcome::kBlocked);
  EXPECT_DOUBLE_EQ(blocked.finish_s, 2.0);
  EXPECT_EQ(blocked.bytes, 0U);

  const auto ok = chan.try_send(1000, 2.0);
  EXPECT_EQ(ok.outcome, net::SimulatedChannel::Attempt::Outcome::kDelivered);

  // Death mid-transfer: counted on the wire, never delivered.
  const auto dying = chan.try_send(10'000'000, 9.5);
  EXPECT_EQ(dying.outcome, net::SimulatedChannel::Attempt::Outcome::kDead);
  EXPECT_DOUBLE_EQ(dying.finish_s, 10.0);

  const auto dead = chan.try_send(1000, 11.0);
  EXPECT_EQ(dead.outcome, net::SimulatedChannel::Attempt::Outcome::kDead);
  EXPECT_EQ(dead.bytes, 0U);
}

// ---- Round protocol --------------------------------------------------------

TEST(RoundProtocolTest, RetriesAreBoundedAndBackedOff) {
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.bandwidth_mbps = 10.0;
  opts.channel.loss_prob = 0.999999;  // effectively always lost
  opts.max_retries = 3;
  net::RoundProtocol proto(opts);
  proto.add_device(0, 10.0);
  const auto d = proto.send_with_retries(0, 1000, 0.0, 0.0);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.transmissions, 1 + opts.max_retries);
  EXPECT_EQ(d.retransmits, opts.max_retries);
  EXPECT_EQ(d.lost_frames, 1 + opts.max_retries);
  // Every transmission still put bytes on the wire.
  EXPECT_EQ(d.bytes_on_wire, 1000U * (1 + opts.max_retries));
}

TEST(RoundProtocolTest, DeadlineMissesAreCountedAndRoundCloses) {
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.bandwidth_mbps = 1.0;  // 1 MB/s: 1 MB takes 1 s
  opts.deadline_s = 0.5;
  net::RoundProtocol proto(opts);
  proto.add_device(0, 1.0);
  proto.add_device(1, 1.0);
  const std::vector<net::RoundProtocol::Send> sends = {
      {0, 100'000, 0.0},    // 0.1 s: in time
      {1, 1'000'000, 0.0},  // 1.0 s: misses the 0.5 s deadline
  };
  const auto out = proto.run_round(sends, 0.0, 0.0);
  EXPECT_EQ(out.delivered, 1);
  EXPECT_EQ(out.deadline_misses, 1);
  // The server waits for the deadline, no longer.
  EXPECT_DOUBLE_EQ(out.round_close_s, 0.5);
}

TEST(RoundProtocolTest, PerDeviceStreamsAreStableUnderChurn) {
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.bandwidth_mbps = 4.0;
  opts.channel.jitter_s = 0.2;
  opts.seed = 31;
  net::RoundProtocol a(opts);
  a.add_device(0, 4.0);
  a.add_device(1, 4.0);
  net::RoundProtocol b(opts);
  b.add_device(1, 4.0);  // registration order differs; id-forked streams
  b.add_device(5, 4.0);  // an extra joiner must not perturb device 1
  b.add_device(0, 4.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.send_with_retries(1, 5000, i * 1.0, 0.0).settle_s,
              b.send_with_retries(1, 5000, i * 1.0, 0.0).settle_s);
  }
}

// ---- Fleet-level integration ----------------------------------------------

double final_accuracy(const fl::RunResult& r) {
  return r.rounds.empty() ? 0.0 : r.rounds.back().test_accuracy;
}

TEST(NetworkSessionTest, IdealSessionIsBitIdenticalToNoSession) {
  const int kCycles = 3;
  fl::RunResult plain, ideal;
  std::vector<float> plain_global, ideal_global;
  {
    fl::Fleet fleet = testing::make_fleet();
    plain = core::HeliosStrategy(core::HeliosConfig{}).run(fleet, kCycles);
    plain_global.assign(fleet.server().global().begin(),
                        fleet.server().global().end());
  }
  {
    fl::Fleet fleet = testing::make_fleet();
    fl::NetworkSession session(fleet, net::NetworkOptions{});  // kIdeal
    ideal = core::HeliosStrategy(core::HeliosConfig{}).run(fleet, kCycles);
    ideal_global.assign(fleet.server().global().begin(),
                        fleet.server().global().end());
  }
  ASSERT_EQ(plain.rounds.size(), ideal.rounds.size());
  for (std::size_t i = 0; i < plain.rounds.size(); ++i) {
    EXPECT_EQ(plain.rounds[i].virtual_time, ideal.rounds[i].virtual_time);
    EXPECT_EQ(plain.rounds[i].test_accuracy, ideal.rounds[i].test_accuracy);
    EXPECT_EQ(plain.rounds[i].mean_train_loss,
              ideal.rounds[i].mean_train_loss);
    EXPECT_EQ(plain.rounds[i].upload_mb, ideal.rounds[i].upload_mb);
  }
  ASSERT_EQ(plain_global.size(), ideal_global.size());
  EXPECT_EQ(std::memcmp(plain_global.data(), ideal_global.data(),
                        plain_global.size() * sizeof(float)),
            0);
}

TEST(NetworkSessionTest, LossyRoundsStillCompleteAndReportTelemetry) {
  obs::TelemetrySink telemetry;
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&telemetry);
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.loss_prob = 0.05;
  opts.max_retries = 2;
  fl::NetworkSession session(fleet, opts);
  session.protocol().script_death(3, 1e-6);  // a straggler dies immediately

  const fl::RunResult r = fl::SyncFL().run(fleet, 3);
  ASSERT_EQ(r.rounds.size(), 3U);
  EXPECT_FALSE(fleet.client(3).active());
  EXPECT_GE(
      telemetry.metrics().counter("helios.net.round_bytes_on_wire_total")
          .value(),
      1.0);
  EXPECT_GE(telemetry.metrics().counter("helios.net.deaths_total").value(),
            1.0);
  fleet.set_telemetry(nullptr);
}

TEST(NetworkSessionTest, ChurnMatchesNoChurnAccuracyWithinTolerance) {
  const int kCycles = 6;
  // Baseline: no churn, ideal network.
  double base_helios, base_sync;
  {
    fl::Fleet fleet = testing::make_fleet();
    base_helios =
        final_accuracy(core::HeliosStrategy(core::HeliosConfig{})
                           .run(fleet, kCycles));
  }
  {
    fl::Fleet fleet = testing::make_fleet();
    base_sync = final_accuracy(fl::SyncFL().run(fleet, kCycles));
  }

  auto add_joiner = [](fl::Fleet& fleet) {
    fl::ClientConfig cfg;
    cfg.seed = 404;
    cfg.lr = 0.08F;
    cfg.batch_size = 8;
    fl::Client& joiner =
        fleet.add_client(testing::tiny_dataset(48), cfg,
                         device::sim_scaled(device::deeplens_cpu()));
    // The joiner is profiled against the collaboration pace and receives
    // its expected volume P_i through the scalability path.
    core::ScalabilityManager admissions;
    const core::AdmissionResult res = admissions.admit(fleet, joiner.id());
    EXPECT_EQ(res.client_id, joiner.id());
    return joiner.id();
  };

  // Helios: device 3 dies mid-collaboration, a joiner arrives at cycle 2.
  {
    fl::Fleet fleet = testing::make_fleet();
    net::NetworkOptions opts;
    opts.mode = net::NetMode::kSimulated;
    fl::NetworkSession session(fleet, opts);
    session.protocol().script_death(3, 1e-6);
    core::HeliosStrategy strategy{core::HeliosConfig{}};
    bool joined = false;
    strategy.set_cycle_hook([&](fl::Fleet& f, int cycle) {
      if (cycle == 2 && !joined) {
        joined = true;
        add_joiner(f);
      }
    });
    const fl::RunResult r = strategy.run(fleet, kCycles);
    ASSERT_EQ(r.rounds.size(), static_cast<std::size_t>(kCycles));
    EXPECT_FALSE(fleet.client(3).active());
    EXPECT_NEAR(final_accuracy(r), base_helios, 0.20);
  }

  // SyncFL: same churn, rounds driven in two segments around the join.
  {
    fl::Fleet fleet = testing::make_fleet();
    net::NetworkOptions opts;
    opts.mode = net::NetMode::kSimulated;
    fl::NetworkSession session(fleet, opts);
    session.protocol().script_death(3, 1e-6);
    fl::SyncFL sync;
    const fl::RunResult first = sync.run(fleet, 2);
    add_joiner(fleet);
    const fl::RunResult rest = sync.run(fleet, kCycles - 2);
    ASSERT_EQ(first.rounds.size() + rest.rounds.size(),
              static_cast<std::size_t>(kCycles));
    EXPECT_FALSE(fleet.client(3).active());
    EXPECT_NEAR(final_accuracy(rest), base_sync, 0.20);
  }
}

TEST(NetworkSessionTest, EveryStrategySurvivesLossAndDeath) {
  struct Case {
    const char* name;
    std::function<fl::RunResult(fl::Fleet&)> run;
    /// Synchronous rounds upload from every device, so the scripted death
    /// is observed in round 0. The event-driven strategies may finish the
    /// requested cycles before the slow straggler ever attempts an upload —
    /// then the death legitimately goes unobserved.
    bool death_observed = true;
  };
  const int kCycles = 2;
  const std::vector<Case> cases = {
      {"helios",
       [&](fl::Fleet& f) {
         return core::HeliosStrategy(core::HeliosConfig{}).run(f, kCycles);
       }},
      {"sync", [&](fl::Fleet& f) { return fl::SyncFL().run(f, kCycles); }},
      {"fedprox",
       [&](fl::Fleet& f) { return fl::FedProx(0.01F).run(f, kCycles); }},
      {"compressed",
       [&](fl::Fleet& f) {
         return fl::CompressedSyncFL(0.25).run(f, kCycles);
       }},
      {"async",
       [&](fl::Fleet& f) { return fl::AsyncFL(0).run(f, kCycles); },
       false},
      {"async-period",
       [&](fl::Fleet& f) { return fl::AsyncFL(2).run(f, kCycles); }},
      {"afo", [&](fl::Fleet& f) { return fl::Afo().run(f, kCycles); },
       false},
  };
  for (const Case& c : cases) {
    fl::Fleet fleet = testing::make_fleet();
    net::NetworkOptions opts;
    opts.mode = net::NetMode::kSimulated;
    opts.channel.loss_prob = 0.05;
    fl::NetworkSession session(fleet, opts);
    session.protocol().script_death(3, 1e-6);
    const fl::RunResult r = c.run(fleet);
    EXPECT_EQ(r.rounds.size(), static_cast<std::size_t>(kCycles)) << c.name;
    if (c.death_observed) {
      EXPECT_FALSE(fleet.client(3).active()) << c.name;
    }
  }
}

// Regression: a round whose entire cohort is lost (every frame dropped
// before the deadline, no retries left) must close as a clean no-op. The
// server model stays bit-identical, rotation regulation never advances
// (no forced neurons, C_s histogram untouched — a lost update is not a
// skipped cycle the server knows about), and the run still records every
// round with virtual time moving forward.
TEST(NetworkSessionTest, WholeCohortLostRoundIsACleanNoOp) {
  const int kCycles = 2;
  obs::TelemetrySink telemetry;
  fl::Fleet fleet = testing::make_fleet();
  fleet.set_telemetry(&telemetry);
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.loss_prob = 0.999999;  // effectively every frame lost
  opts.max_retries = 1;
  fl::NetworkSession session(fleet, opts);

  const std::vector<float> before(fleet.server().global().begin(),
                                  fleet.server().global().end());
  const fl::RunResult r =
      core::HeliosStrategy(core::HeliosConfig{}).run(fleet, kCycles);

  ASSERT_EQ(r.rounds.size(), static_cast<std::size_t>(kCycles));
  EXPECT_GT(r.rounds.back().virtual_time, 0.0);

  // Server model bit-unchanged: nothing was ever aggregated.
  ASSERT_EQ(fleet.server().global().size(), before.size());
  EXPECT_EQ(std::memcmp(fleet.server().global().data(), before.data(),
                        before.size() * sizeof(float)),
            0)
      << "a fully-lost round must not move the global model";

  // C_s counters untouched: rotation state only advances on delivery.
  for (const auto& c : fleet.clients()) {
    const obs::DeviceStats d = telemetry.dashboard().device(c->id());
    EXPECT_EQ(d.forced_neurons, 0) << "device " << c->id();
    EXPECT_EQ(d.cs_hist[1] + d.cs_hist[2] + d.cs_hist[3], 0)
        << "device " << c->id();
    EXPECT_GT(d.drops, 0) << "device " << c->id();
  }
  fleet.set_telemetry(nullptr);
}

// Same invariant for plain SyncFL: full loss leaves the global untouched.
TEST(NetworkSessionTest, SyncFLWholeCohortLostLeavesGlobalUnchanged) {
  fl::Fleet fleet = testing::make_fleet();
  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.loss_prob = 0.999999;
  opts.max_retries = 0;
  fl::NetworkSession session(fleet, opts);
  const std::vector<float> before(fleet.server().global().begin(),
                                  fleet.server().global().end());
  const fl::RunResult r = fl::SyncFL().run(fleet, 2);
  ASSERT_EQ(r.rounds.size(), 2U);
  EXPECT_EQ(std::memcmp(fleet.server().global().data(), before.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(CompressionTest, WireBytesTrackKeptFraction) {
  fl::Fleet fleet = testing::make_fleet();
  net::WireLayout layout =
      net::make_wire_layout(fleet.server().reference_model());
  const std::vector<float> base(fleet.server().global());
  fl::ClientUpdate update = fleet.client(0).run_cycle(
      base, fleet.server().global_buffers(), {});

  fl::ClientUpdate full = update;
  const fl::CompressionStats all =
      fl::compress_update_topk(full, base, 1.0, &layout);
  EXPECT_EQ(all.wire_bytes,
            net::sparse_frame_bytes(all.kept_entries, layout.buffer_count, 0));

  fl::ClientUpdate quarter = update;
  const fl::CompressionStats kept =
      fl::compress_update_topk(quarter, base, 0.25, &layout);
  EXPECT_LT(kept.wire_bytes, all.wire_bytes);
  // The sparse frame for the compressed update is exactly what the encoder
  // produces against the same base.
  net::WireMessage msg;
  msg.client_id = quarter.client_id;
  msg.sample_count = quarter.sample_count;
  msg.mean_loss = quarter.mean_loss;
  msg.params = quarter.params;
  msg.buffers = quarter.buffers;
  msg.neuron_mask = quarter.trained_mask;
  EXPECT_EQ(net::encode_frame_sparse(msg, base, layout).size(),
            kept.wire_bytes);
}

}  // namespace
}  // namespace helios
