// Tests for the extended layer set (GroupNorm, Dropout, DepthwiseConv2d,
// AvgPool2d, extra activations) and the Adam optimizer.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/adam.h"
#include "nn/depthwise.h"
#include "nn/dropout.h"
#include "nn/groupnorm.h"
#include "nn/pool.h"
#include "test_support.h"

namespace helios::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testing::gradcheck_layer;

TEST(GradCheckExtra, GroupNorm) {
  util::Rng rng(71);
  GroupNorm2d layer(4, 3, 3, 2);
  Tensor x = Tensor::randn({3, 4, 3, 3}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng, 24, 8e-2), 0);
}

TEST(GradCheckExtra, GroupNormMasked) {
  util::Rng rng(72);
  GroupNorm2d layer(4, 3, 3, 2);
  const std::vector<std::uint8_t> mask{1, 0, 1, 1};
  layer.set_mask(mask);
  Tensor x = Tensor::randn({3, 4, 3, 3}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng, 24, 8e-2), 0);
}

TEST(GradCheckExtra, DepthwiseConv) {
  util::Rng rng(73);
  DepthwiseConv2d layer(3, 6, 6, 3, 1, 1, rng);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheckExtra, DepthwiseConvStridedMasked) {
  util::Rng rng(74);
  DepthwiseConv2d layer(4, 8, 8, 3, 2, 1, rng);
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  layer.set_mask(mask);
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheckExtra, AvgPool) {
  util::Rng rng(75);
  AvgPool2d layer(2, 6, 6, 2, 2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
}

TEST(GradCheckExtra, TanhSigmoidLeaky) {
  util::Rng rng(76);
  {
    Tanh layer;
    Tensor x = Tensor::randn({3, 8}, rng);
    EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
  }
  {
    Sigmoid layer;
    Tensor x = Tensor::randn({3, 8}, rng);
    EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
  }
  {
    LeakyReLU layer(0.1F);
    Tensor x = Tensor::randn({3, 8}, rng);
    EXPECT_EQ(gradcheck_layer(layer, x, rng), 0);
  }
}

TEST(GroupNorm, NormalizesPerSampleGroups) {
  util::Rng rng(77);
  GroupNorm2d gn(4, 4, 4, 2);
  Tensor x = Tensor::randn({2, 4, 4, 4}, rng, 3.0F);
  Tensor y = gn.forward(x, true);
  // Each (sample, group) slice of the output is ~zero-mean unit-variance.
  for (int i = 0; i < 2; ++i) {
    for (int g = 0; g < 2; ++g) {
      double s = 0.0, s2 = 0.0;
      for (int k = 0; k < 2; ++k) {
        const int c = g * 2 + k;
        for (int h = 0; h < 4; ++h) {
          for (int w = 0; w < 4; ++w) {
            const double v = y.at(i, c, h, w);
            s += v;
            s2 += v * v;
          }
        }
      }
      EXPECT_NEAR(s / 32.0, 0.0, 1e-4);
      EXPECT_NEAR(s2 / 32.0, 1.0, 2e-2);
    }
  }
}

TEST(GroupNorm, HasNoBuffers) {
  GroupNorm2d gn(4, 2, 2, 2);
  EXPECT_TRUE(gn.buffers().empty());
  EXPECT_TRUE(gn.mask_follower());
}

TEST(GroupNorm, RejectsBadGroups) {
  EXPECT_THROW(GroupNorm2d(4, 2, 2, 3), std::invalid_argument);
  EXPECT_THROW(GroupNorm2d(4, 2, 2, 0), std::invalid_argument);
}

TEST(GroupNorm, MaskedChannelsZeroAndExcludedFromStats) {
  util::Rng rng(78);
  GroupNorm2d gn(2, 2, 2, 1);
  const std::vector<std::uint8_t> mask{1, 0};
  gn.set_mask(mask);
  Tensor x = Tensor::randn({2, 2, 2, 2}, rng);
  Tensor y = gn.forward(x, true);
  for (int i = 0; i < 2; ++i) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(y.at(i, 1, p / 2, p % 2), 0.0F);
    }
    // The active channel normalizes over itself only: mean ~0 across its 4
    // elements.
    double s = 0.0;
    for (int p = 0; p < 4; ++p) s += y.at(i, 0, p / 2, p % 2);
    EXPECT_NEAR(s / 4.0, 0.0, 1e-4);
  }
}

TEST(Dropout, EvalIsIdentity) {
  util::Rng rng(79);
  Dropout layer(0.5F, 7);
  Tensor x = Tensor::randn({4, 10}, rng);
  Tensor y = layer.forward(x, false);
  EXPECT_TRUE(y.allclose(x));
}

TEST(Dropout, TrainDropsApproximatelyRate) {
  util::Rng rng(80);
  Dropout layer(0.3F, 8);
  Tensor x = Tensor::full({100, 100}, 1.0F);
  Tensor y = layer.forward(x, true);
  int zeros = 0;
  for (float v : y.flat()) zeros += (v == 0.0F);
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.02);
  // Kept units are scaled by 1/(1-rate); the mean stays ~1.
  double mean = 0.0;
  for (float v : y.flat()) mean += v;
  EXPECT_NEAR(mean / 10000.0, 1.0, 0.05);
}

TEST(Dropout, BackwardMatchesForwardMask) {
  Dropout layer(0.5F, 9);
  Tensor x = Tensor::full({1, 64}, 1.0F);
  Tensor y = layer.forward(x, true);
  Tensor g = Tensor::full({1, 64}, 1.0F);
  Tensor dx = layer.backward(g);
  for (std::size_t i = 0; i < 64; ++i) {
    if (y.flat()[i] == 0.0F) {
      EXPECT_EQ(dx.flat()[i], 0.0F);
    } else {
      EXPECT_NEAR(dx.flat()[i], 2.0F, 1e-6F);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(-0.1F, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0F, 1), std::invalid_argument);
}

TEST(AvgPool, AveragesWindows) {
  AvgPool2d p(1, 4, 4, 2, 2);
  Tensor x({1, 1, 4, 4}, {1, 2, 3, 4,
                          5, 6, 7, 8,
                          9, 10, 11, 12,
                          13, 14, 15, 16});
  Tensor y = p.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor({1, 1, 2, 2}, {3.5F, 5.5F, 11.5F, 13.5F})));
}

TEST(Depthwise, MaskedChannelOutputsZero) {
  util::Rng rng(81);
  DepthwiseConv2d dw(3, 5, 5, 3, 1, 1, rng);
  const std::vector<std::uint8_t> mask{0, 1, 1};
  dw.set_mask(mask);
  Tensor x = Tensor::randn({1, 3, 5, 5}, rng);
  Tensor y = dw.forward(x, false);
  for (int p = 0; p < 25; ++p) {
    EXPECT_EQ(y.at(0, 0, p / 5, p % 5), 0.0F);
  }
  EXPECT_NE(y.at(0, 1, 2, 2), 0.0F);
}

TEST(Depthwise, FlopsScaleWithActiveChannels) {
  util::Rng rng(82);
  DepthwiseConv2d dw(4, 8, 8, 3, 1, 1, rng);
  const double full = dw.forward_flops_per_sample();
  const std::vector<std::uint8_t> mask{1, 0, 0, 0};
  dw.set_mask(mask);
  EXPECT_NEAR(dw.forward_flops_per_sample() / full, 0.25, 1e-9);
}

TEST(Adam, ReducesLossOnFixedBatch) {
  nn::Model m = models::make_mlp({1, 4, 4, 3}, 83, 12);
  Adam opt(5e-3F);
  util::Rng rng(84);
  Tensor x = Tensor::randn({12, 1, 4, 4}, rng);
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    labels.push_back(static_cast<int>(rng.uniform_int(3)));
  }
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 40; ++step) {
    m.zero_grad();
    Tensor logits = m.forward(x, true);
    Tensor grad;
    const double loss = tensor::softmax_cross_entropy(logits, labels, grad);
    m.backward(grad);
    opt.step(m);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5);
  EXPECT_EQ(opt.steps_taken(), 40);
}

TEST(Adam, RespectsFrozenNeurons) {
  nn::Model m = models::make_mlp({1, 4, 4, 3}, 85, 8);
  Adam opt(1e-2F);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m.neuron_total()), 1);
  mask[2] = 0;
  m.set_neuron_mask(mask);
  const auto before = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);
  opt.step(m);
  const auto after = m.params_flat();
  for (const FlatSlice& s : m.neurons()[2].slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      EXPECT_EQ(after[f], before[f]);
    }
  }
}

TEST(Adam, RejectsBadHyperparameters) {
  EXPECT_THROW(Adam(0.0F), std::invalid_argument);
  EXPECT_THROW(Adam(1e-3F, 1.0F), std::invalid_argument);
  EXPECT_THROW(Adam(1e-3F, 0.9F, 1.0F), std::invalid_argument);
  EXPECT_THROW(Adam(1e-3F, 0.9F, 0.999F, 0.0F), std::invalid_argument);
  EXPECT_THROW(Adam(1e-3F, 0.9F, 0.999F, 1e-8F, -1.0F), std::invalid_argument);
}

TEST(MobileNet, BuildsAndClassifies) {
  nn::Model m = models::make_mobilenet_lite({3, 16, 16, 10}, 86, 8);
  util::Rng rng(87);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 10}));
  EXPECT_TRUE(m.buffers_flat().empty());  // GroupNorm: nothing to federate
}

TEST(MobileNet, NeuronsAreSeparableChannels) {
  nn::Model m = models::make_mobilenet_lite({3, 16, 16, 10}, 88, 8);
  // Leaders: stem (8) + 4 pointwise convs (16, 16, 32, 32) = 104.
  EXPECT_EQ(m.neuron_total(), 8 + 16 + 16 + 32 + 32);
  // A stem neuron owns: conv filter (3*9=27) + bias + stem GN pair +
  // following depthwise taps (9) + dw bias + dw GN pair = 27+1+2+9+1+2 = 42.
  EXPECT_EQ(m.neurons()[0].param_count(), 42u);
}

TEST(MobileNet, MaskingWorksEndToEnd) {
  nn::Model m = models::make_mobilenet_lite({3, 16, 16, 10}, 89, 8);
  const double full_flops = m.forward_flops_per_sample();
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(m.neuron_total()), 1);
  for (std::size_t j = 0; j < mask.size(); j += 2) mask[j] = 0;
  m.set_neuron_mask(mask);
  util::Rng rng(90);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 10}));
  EXPECT_LT(m.forward_flops_per_sample(), 0.8 * full_flops);
}

TEST(MobileNet, RejectsBadWidth) {
  EXPECT_THROW(models::make_mobilenet_lite({3, 16, 16, 10}, 1, 6),
               std::invalid_argument);
}

}  // namespace
}  // namespace helios::nn
