// Behavioural layer tests (shape, masking semantics, caching, FLOPs);
// gradient correctness lives in gradcheck_test.cpp.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pool.h"
#include "nn/residual.h"

namespace helios::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Dense, ForwardShapeAndBias) {
  util::Rng rng(1);
  Dense d(3, 4, rng);
  Tensor x({2, 3});
  Tensor y = d.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4}));
  // Zero input -> output equals bias (zero-initialized).
  for (float v : y.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(Dense, MaskedUnitsProduceZero) {
  util::Rng rng(2);
  Dense d(5, 6, rng);
  const std::vector<std::uint8_t> mask{1, 0, 1, 0, 1, 0};
  d.set_mask(mask);
  Tensor x = Tensor::randn({3, 5}, rng);
  Tensor y = d.forward(x, false);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(y.at(i, 1), 0.0F);
    EXPECT_EQ(y.at(i, 3), 0.0F);
    EXPECT_EQ(y.at(i, 5), 0.0F);
    EXPECT_NE(y.at(i, 0), 0.0F);
  }
}

TEST(Dense, MaskedForwardMatchesDenseOnActiveUnits) {
  util::Rng rng(3);
  Dense d(4, 5, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor full = d.forward(x, false);
  const std::vector<std::uint8_t> mask{1, 1, 0, 1, 1};
  d.set_mask(mask);
  Tensor masked = d.forward(x, false);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (mask[static_cast<std::size_t>(j)]) {
        EXPECT_NEAR(masked.at(i, j), full.at(i, j), 1e-6F);
      } else {
        EXPECT_EQ(masked.at(i, j), 0.0F);
      }
    }
  }
}

TEST(Dense, MaskedBackwardLeavesFrozenGradZero) {
  util::Rng rng(4);
  Dense d(3, 4, rng);
  const std::vector<std::uint8_t> mask{0, 1, 1, 0};
  d.set_mask(mask);
  Tensor x = Tensor::randn({2, 3}, rng);
  d.zero_grad();
  d.forward(x, true);
  Tensor g = Tensor::randn({2, 4}, rng);
  d.backward(g);
  auto grads = d.grads();
  for (int in = 0; in < 3; ++in) {
    EXPECT_EQ(grads[0]->at(0, in), 0.0F);  // row 0 frozen
    EXPECT_EQ(grads[0]->at(3, in), 0.0F);  // row 3 frozen
  }
  EXPECT_EQ(grads[1]->at(0), 0.0F);
  EXPECT_EQ(grads[1]->at(3), 0.0F);
  EXPECT_NE(grads[1]->at(1), 0.0F);
}

TEST(Dense, NonMaskableHeadRejectsMask) {
  util::Rng rng(5);
  Dense head(4, 3, rng, /*maskable=*/false);
  EXPECT_EQ(head.neuron_count(), 0);
  const std::vector<std::uint8_t> mask{1, 1, 0};
  EXPECT_THROW(head.set_mask(mask), std::logic_error);
}

TEST(Dense, NeuronSlicesCoverRowAndBias) {
  util::Rng rng(6);
  Dense d(7, 3, rng);
  const auto slices = d.neuron_slices(2);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].param_index, 0);
  EXPECT_EQ(slices[0].offset, 14u);
  EXPECT_EQ(slices[0].length, 7u);
  EXPECT_EQ(slices[1].param_index, 1);
  EXPECT_EQ(slices[1].offset, 2u);
  EXPECT_EQ(slices[1].length, 1u);
  EXPECT_THROW(d.neuron_slices(3), std::out_of_range);
}

TEST(Dense, MaskReducesFlops) {
  util::Rng rng(7);
  Dense d(10, 8, rng);
  const double full = d.forward_flops_per_sample();
  const std::vector<std::uint8_t> mask{1, 1, 0, 0, 0, 0, 0, 0};
  d.set_mask(mask);
  EXPECT_NEAR(d.forward_flops_per_sample(), full * 0.25, 1.0);
  d.clear_mask();
  EXPECT_EQ(d.forward_flops_per_sample(), full);
}

TEST(Conv2d, OutputGeometry) {
  util::Rng rng(8);
  Conv2d c(3, 8, 8, 4, 3, 2, 1, rng);
  EXPECT_EQ(c.out_h(), 4);
  EXPECT_EQ(c.out_w(), 4);
  Tensor x({2, 3, 8, 8});
  Tensor y = c.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 4}));
}

TEST(Conv2d, MaskedChannelsAreZero) {
  util::Rng rng(9);
  Conv2d c(2, 5, 5, 3, 3, 1, 1, rng);
  const std::vector<std::uint8_t> mask{0, 1, 0};
  c.set_mask(mask);
  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  Tensor y = c.forward(x, false);
  for (int p = 0; p < 25; ++p) {
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(p)], 0.0F);           // ch 0
    EXPECT_EQ(y.flat()[static_cast<std::size_t>(50 + p)], 0.0F);      // ch 2
  }
}

TEST(Conv2d, MaskedMatchesFullOnActiveChannels) {
  util::Rng rng(10);
  Conv2d c(2, 6, 6, 4, 3, 1, 0, rng);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  Tensor full = c.forward(x, false);
  const std::vector<std::uint8_t> mask{1, 0, 0, 1};
  c.set_mask(mask);
  Tensor masked = c.forward(x, false);
  const int plane = c.out_h() * c.out_w();
  for (int n = 0; n < 2; ++n) {
    for (int oc : {0, 3}) {
      for (int p = 0; p < plane; ++p) {
        EXPECT_NEAR(masked.at(n, oc, p / c.out_w(), p % c.out_w()),
                    full.at(n, oc, p / c.out_w(), p % c.out_w()), 1e-5F);
      }
    }
  }
}

TEST(Conv2d, RejectsBadGeometry) {
  util::Rng rng(11);
  EXPECT_THROW(Conv2d(0, 5, 5, 3, 3, 1, 1, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d(1, 2, 2, 3, 5, 1, 0, rng), std::invalid_argument);
}

TEST(Conv2d, FlopsScaleWithActiveFilters) {
  util::Rng rng(12);
  Conv2d c(2, 8, 8, 4, 3, 1, 1, rng);
  const double full = c.forward_flops_per_sample();
  const std::vector<std::uint8_t> mask{1, 0, 0, 0};
  c.set_mask(mask);
  EXPECT_NEAR(c.forward_flops_per_sample() / full, 0.25, 1e-9);
}

TEST(ReLU, ClampsNegative) {
  ReLU r;
  Tensor x({1, 4}, {-1.0F, 0.0F, 2.0F, -3.0F});
  Tensor y = r.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor({1, 4}, {0.0F, 0.0F, 2.0F, 0.0F})));
}

TEST(ReLU, BackwardUsesForwardSign) {
  ReLU r;
  Tensor x({1, 3}, {-1.0F, 1.0F, 2.0F});
  r.forward(x, true);
  Tensor g({1, 3}, {5.0F, 5.0F, 5.0F});
  Tensor dx = r.backward(g);
  EXPECT_TRUE(dx.allclose(Tensor({1, 3}, {0.0F, 5.0F, 5.0F})));
}

TEST(MaxPool, SelectsMaxima) {
  MaxPool2d p(1, 4, 4, 2, 2);
  Tensor x({1, 1, 4, 4}, {1, 2, 3, 4,
                          5, 6, 7, 8,
                          9, 10, 11, 12,
                          13, 14, 15, 16});
  Tensor y = p.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor({1, 1, 2, 2}, {6, 8, 14, 16})));
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d p(1, 2, 2, 2, 2);
  Tensor x({1, 1, 2, 2}, {1, 9, 2, 3});
  p.forward(x, true);
  Tensor g({1, 1, 1, 1}, {4.0F});
  Tensor dx = p.backward(g);
  EXPECT_TRUE(dx.allclose(Tensor({1, 1, 2, 2}, {0, 4, 0, 0})));
}

TEST(GlobalAvgPool, AveragesPlane) {
  GlobalAvgPool p(2, 2, 2);
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = p.forward(x, false);
  EXPECT_NEAR(y.at(0, 0), 2.5F, 1e-6F);
  EXPECT_NEAR(y.at(0, 1), 10.0F, 1e-6F);
}

TEST(Flatten, RoundTrip) {
  Flatten f(2, 3, 4);
  util::Rng rng(13);
  Tensor x = Tensor::randn({5, 2, 3, 4}, rng);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{5, 24}));
  Tensor back = f.backward(y);
  EXPECT_TRUE(back.allclose(x));
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  util::Rng rng(14);
  BatchNorm2d bn(2, 4, 4);
  Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 3.0F);
  Tensor y = bn.forward(x, true);
  // Each channel of the output should be ~zero-mean unit-variance.
  for (int c = 0; c < 2; ++c) {
    double s = 0.0, s2 = 0.0;
    for (int n = 0; n < 8; ++n) {
      for (int h = 0; h < 4; ++h) {
        for (int w = 0; w < 4; ++w) {
          const double v = y.at(n, c, h, w);
          s += v;
          s2 += v * v;
        }
      }
    }
    const double count = 8 * 16;
    EXPECT_NEAR(s / count, 0.0, 1e-4);
    EXPECT_NEAR(s2 / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  util::Rng rng(15);
  BatchNorm2d bn(1, 2, 2);
  // Train on data with mean 5 to move the running stats; with momentum 0.1
  // the residual of the initial value decays as 0.9^n.
  Tensor x = Tensor::full({4, 1, 2, 2}, 5.0F);
  for (int i = 0; i < 100; ++i) bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean().at(0), 5.0F, 0.01F);
  // Eval-mode output of the same constant input is near zero.
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y.at(0, 0, 0, 0), 0.0F, 0.5F);
}

TEST(BatchNorm, MaskedChannelOutputsZero) {
  util::Rng rng(16);
  BatchNorm2d bn(2, 2, 2);
  const std::vector<std::uint8_t> mask{0, 1};
  bn.set_mask(mask);
  Tensor x = Tensor::randn({3, 2, 2, 2}, rng);
  Tensor y = bn.forward(x, true);
  for (int n = 0; n < 3; ++n) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(y.at(n, 0, p / 2, p % 2), 0.0F);
    }
  }
  EXPECT_TRUE(bn.mask_follower());
}

TEST(Residual, IdentitySkipPreservesShape) {
  util::Rng rng(17);
  ResidualBlock block(4, 6, 6, 4, 1, rng);
  Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Residual, ProjectionChangesShape) {
  util::Rng rng(18);
  ResidualBlock block(4, 6, 6, 8, 2, rng);
  Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 3, 3}));
}

TEST(Residual, LeavesExposeSublayers) {
  util::Rng rng(19);
  ResidualBlock block(4, 6, 6, 8, 2, rng);
  std::vector<Layer*> leaves;
  block.append_leaves(leaves);
  // conv1, bn1, relu1, conv2, bn2, proj, projbn, relu2
  EXPECT_EQ(leaves.size(), 8u);
  EXPECT_EQ(block.follower_links().size(), 2u);
}

}  // namespace
}  // namespace helios::nn
