// Telemetry subsystem tests: histogram bucket boundaries, trace JSON
// well-formedness, the zero-allocation disabled path, and a golden 2-device
// Helios run whose dashboard must agree with the aggregation inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/helios_strategy.h"
#include "obs/metrics.h"
#include "obs/procstat.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "test_support.h"
#include "util/json.h"

// ---- Allocation counting for the disabled-path test --------------------
//
// The whole binary routes through these; the test only compares counts
// around the instrumented region. malloc/free keeps ASan's bookkeeping
// consistent when the suite runs sanitized.

namespace {
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace helios {
namespace {

// ---- Histogram bucket boundaries ---------------------------------------

TEST(HistogramTest, DefaultBucketBoundaries) {
  obs::Histogram h;  // lowest 1e-6, growth 4, 20 finite buckets
  ASSERT_EQ(h.bucket_count(), 20U);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1e-6);
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 4e-6);
  EXPECT_DOUBLE_EQ(h.upper_bound(2), 1.6e-5);
  // Log-scale: each bound is growth x the previous one.
  for (std::size_t i = 1; i < h.bucket_count(); ++i) {
    EXPECT_NEAR(h.upper_bound(i) / h.upper_bound(i - 1), 4.0, 1e-9);
  }
}

TEST(HistogramTest, BucketIndexEdges) {
  obs::Histogram h(obs::HistogramOptions{1.0, 2.0, 4});  // bounds 1,2,4,8
  ASSERT_EQ(h.bucket_count(), 4U);
  // Bucket 0 is (-inf, lowest]; each bucket is half-open on the left.
  EXPECT_EQ(h.bucket_index(-3.0), 0U);
  EXPECT_EQ(h.bucket_index(0.0), 0U);
  EXPECT_EQ(h.bucket_index(1.0), 0U);
  EXPECT_EQ(h.bucket_index(1.5), 1U);
  EXPECT_EQ(h.bucket_index(2.0), 1U);
  EXPECT_EQ(h.bucket_index(2.0001), 2U);
  EXPECT_EQ(h.bucket_index(8.0), 3U);
  // Above the last finite bound: the +Inf overflow slot.
  EXPECT_EQ(h.bucket_index(8.5), h.bucket_count());
}

TEST(HistogramTest, ObserveCountsAndSum) {
  obs::Histogram h(obs::HistogramOptions{1.0, 2.0, 4});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4U);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_EQ(h.bucket(0), 1U);
  EXPECT_EQ(h.bucket(2), 2U);
  EXPECT_EQ(h.bucket(h.bucket_count()), 1U);  // overflow
}

// ---- Metrics registry ----------------------------------------------------

TEST(MetricsRegistryTest, LabelOrderIsCanonical) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("helios.test", {{"x", "1"}, {"y", "2"}});
  obs::Counter& b = reg.counter("helios.test", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  obs::Counter& c = reg.counter("helios.test", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.series_count(), 2U);
}

TEST(MetricsRegistryTest, PrometheusExport) {
  obs::MetricsRegistry reg;
  reg.counter("helios.cycles", {{"device", "0"}}).add(3);
  reg.gauge("helios.r_n", {{"device", "0"}}).set(0.35);
  reg.histogram("helios.lat", {}, obs::HistogramOptions{1.0, 2.0, 2})
      .observe(1.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE helios_cycles counter"), std::string::npos);
  EXPECT_NE(text.find("helios_cycles{device=\"0\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE helios_r_n gauge"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf / sum / count.
  EXPECT_NE(text.find("helios_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("helios_lat_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusEmitsHelpAndEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter("helios.odd", {{"path", "a\\b\"c\nd"}}).add(1);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  // HELP keeps the original dotted name next to the mangled family name.
  EXPECT_NE(text.find("# HELP helios_odd helios.odd"), std::string::npos);
  // Backslash, quote and newline in the label value are escaped per the
  // exposition format, so the line stays one line and parses.
  EXPECT_NE(text.find("helios_odd{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos);
}

TEST(ProcStatTest, ReportsProcessMemoryAndSetsGauges) {
  const obs::ProcMemory mem = obs::read_proc_memory();
  EXPECT_TRUE(mem.ok);
  EXPECT_GT(mem.peak_rss_mb, 0.0);
  obs::MetricsRegistry reg;
  obs::sample_process_memory(reg);
  EXPECT_GT(reg.gauge("helios.proc.rss_mb").value(), 0.0);
  EXPECT_GE(reg.gauge("helios.proc.peak_rss_mb").value(),
            reg.gauge("helios.proc.rss_mb").value());
}

TEST(StragglerDashboardTest, SummaryJsonMatchesFleetStats) {
  obs::StragglerDashboard dash;
  for (int d = 0; d < 40; ++d) {
    dash.update(d, [&](obs::DeviceStats& s) {
      s.straggler = d % 4 == 0;
      ++s.cycles;
      s.compute_seconds = d;
    });
  }
  std::ostringstream os;
  dash.write_summary_json(os);
  const util::JsonValue v = util::JsonValue::parse(os.str());
  EXPECT_EQ(v.number_or("devices", 0), 40.0);
  EXPECT_EQ(v.number_or("stragglers", 0), 10.0);
  EXPECT_EQ(v.number_or("cycles", 0), 40.0);
  const util::JsonValue* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const util::JsonValue* compute = metrics->find("compute_seconds");
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->number_or("max", 0), 39.0);
  EXPECT_GT(compute->number_or("p90", 0), compute->number_or("p50", -1.0));
}

// ---- Trace well-formedness ----------------------------------------------

/// Minimal structural JSON check: quotes pair up and brackets/braces
/// balance outside of strings.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& s, const std::string& sub) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(sub); pos != std::string::npos;
       pos = s.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

TEST(TraceWriterTest, ProducesParsableEventArray) {
  std::ostringstream os;
  {
    obs::TraceWriter w(os);
    w.name_process(1, "test");
    w.name_thread(7, "device-7", 2);
    {
      obs::TraceSpan outer(&w, "outer", {{"cycle", 3}});
      obs::TraceSpan inner(&w, "inner", {{"device", 1}, {"frac", 0.5}});
    }
    w.instant("marker", {{"note", "quote\"and\\slash"}});
    w.complete("train", 7, 1000.0, 250.0, {{"device", 7}});
    EXPECT_EQ(w.event_count(), 8U);  // 2 meta + 2 B + 2 E + i + X
    w.close();
  }
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("]"), std::string::npos);
  EXPECT_TRUE(json_balanced(text)) << text;
  // Durations pair up and the explicit phases all appear.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"B\""), 2U);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"E\""), 2U);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 1U);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"i\""), 1U);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"M\""), 2U);
  // Escaping kept the tricky instant argument inside one string.
  EXPECT_NE(text.find("quote\\\"and\\\\slash"), std::string::npos);
  // The complete event landed on the virtual-time process/track.
  EXPECT_NE(text.find("\"pid\":2,\"tid\":7"), std::string::npos);
}

TEST(TraceWriterTest, EventsAfterCloseAreDropped) {
  std::ostringstream os;
  obs::TraceWriter w(os);
  w.instant("kept", {});
  w.close();
  const std::string closed = os.str();
  w.instant("dropped", {});
  EXPECT_EQ(os.str(), closed);
  EXPECT_TRUE(json_balanced(closed));
}

// ---- Disabled path -------------------------------------------------------

TEST(TraceDisabledTest, SpanAllocatesNothingWithoutTracer) {
  ASSERT_EQ(obs::active_tracer(), nullptr);
  // Warm up anything lazy, then measure.
  for (int i = 0; i < 4; ++i) {
    HELIOS_TRACE_SPAN("disabled.warmup", {{"i", i}});
  }
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    HELIOS_TRACE_SPAN("disabled.span", {{"device", i}, {"frac", 0.25}});
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// ---- Golden 2-device Helios run -----------------------------------------

TEST(TelemetryGoldenTest, TwoDeviceDashboardIsConsistent) {
  testing::FleetOptions o;
  o.clients = 2;
  o.stragglers = 1;
  o.volume = 0.5;
  fl::Fleet fleet = testing::make_fleet(o);

  obs::TelemetrySink sink;  // no artifact prefix: trace stays in memory
  fleet.set_telemetry(&sink);

  core::HeliosConfig cfg;
  cfg.pace_adaptation_cycles = 0;  // keep the straggler volume fixed at 0.5
  const fl::RunResult result = core::HeliosStrategy(cfg).run(fleet, 3);
  fleet.set_telemetry(nullptr);
  sink.flush();

  ASSERT_EQ(result.rounds.size(), 3U);
  ASSERT_EQ(sink.dashboard().device_count(), 2U);

  const obs::DeviceStats capable = sink.dashboard().device(0);
  const obs::DeviceStats straggler = sink.dashboard().device(1);

  // Roles and cycle counts.
  EXPECT_FALSE(capable.straggler);
  EXPECT_TRUE(straggler.straggler);
  EXPECT_EQ(capable.cycles, 3);
  EXPECT_EQ(straggler.cycles, 3);

  // r_n: the capable device always trains the full model; the straggler a
  // proper submodel. The server-recorded fraction must equal the
  // client-side mask count over the model's neuron total.
  EXPECT_DOUBLE_EQ(capable.r_n, 1.0);
  EXPECT_GT(straggler.r_n, 0.0);
  EXPECT_LT(straggler.r_n, 1.0);
  ASSERT_GT(straggler.neuron_total, 0);
  EXPECT_NEAR(straggler.r_n,
              static_cast<double>(straggler.trained_neurons) /
                  static_cast<double>(straggler.neuron_total),
              1e-9);
  EXPECT_EQ(capable.trained_neurons, capable.neuron_total);

  // Aggregation shares sum to 1 across the cycle's participants, and the
  // straggler's Eq. 10 damping keeps its share below the capable one's.
  EXPECT_NEAR(capable.alpha_n + straggler.alpha_n, 1.0, 1e-9);
  EXPECT_LT(straggler.alpha_n, capable.alpha_n);

  // Rotation bookkeeping only tracks stragglers, and the skipped-cycle
  // histogram covers every neuron.
  EXPECT_EQ(capable.forced_neurons, 0);
  int cs_total = 0;
  for (int c : straggler.cs_hist) cs_total += c;
  EXPECT_EQ(cs_total, straggler.neuron_total);

  // Time split and upload volume were accumulated.
  EXPECT_GT(straggler.compute_seconds, 0.0);
  EXPECT_GT(straggler.comm_seconds, 0.0);
  EXPECT_GT(straggler.upload_mb, 0.0);
  EXPECT_LT(straggler.upload_mb, capable.upload_mb);

  // The in-memory trace is a loadable event array with instrumented spans.
  const std::string trace = sink.trace_text();
  EXPECT_TRUE(json_balanced(trace));
  EXPECT_NE(trace.find("client.run_cycle"), std::string::npos);
  EXPECT_NE(trace.find("server.aggregate"), std::string::npos);
  EXPECT_NE(trace.find("helios.select_submodels"), std::string::npos);

  // Dashboard JSON and the rendered table expose the r_n / alpha_n columns.
  std::ostringstream dash_json;
  sink.write_dashboard_json(dash_json);
  EXPECT_TRUE(json_balanced(dash_json.str()));
  EXPECT_NE(dash_json.str().find("\"r_n\""), std::string::npos);
  EXPECT_NE(dash_json.str().find("\"alpha_n\""), std::string::npos);
  std::ostringstream table;
  sink.render_dashboard(table);
  EXPECT_NE(table.str().find("r_n"), std::string::npos);
  EXPECT_NE(table.str().find("alpha_n"), std::string::npos);

  // Prometheus dump covers the per-device series.
  std::ostringstream prom;
  sink.write_metrics_prometheus(prom);
  EXPECT_NE(prom.str().find("helios_client_cycles_total"),
            std::string::npos);
  EXPECT_NE(prom.str().find("helios_server_r_n"), std::string::npos);
}

TEST(TelemetrySinkTest, CountersSurviveConcurrentClientUpdates) {
  // Fleet::parallel_train reports client cycles to the sink from pool
  // threads: hammer the sink from several threads and check nothing is
  // lost. Devices are registered sequentially first so dashboard order is
  // deterministic.
  obs::TelemetrySink sink;
  constexpr int kThreads = 4;
  constexpr int kIters = 250;
  for (int d = 0; d < kThreads; ++d) {
    sink.record_client_cycle(d, "hammer", d % 2 == 1, 1.0, 24, 24, 0.5, 0.1,
                             0.25, 1.0);
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int d = 0; d < kThreads; ++d) {
    threads.emplace_back([&sink, d] {
      for (int i = 1; i < kIters; ++i) {
        sink.record_client_cycle(d, "hammer", d % 2 == 1, 1.0, 24, 24, 0.5,
                                 0.1, 0.25, 1.0);
        sink.record_aggregation_weight(d, 0.5, 0.25);
        sink.record_cycle_result("hammer", i, static_cast<double>(i), 0.5,
                                 1.0, 0.25);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  sink.flush();

  ASSERT_EQ(sink.dashboard().device_count(),
            static_cast<std::size_t>(kThreads));
  double upload_total = 0.0;
  for (int d = 0; d < kThreads; ++d) {
    const obs::DeviceStats stats = sink.dashboard().device(
        static_cast<std::size_t>(d));
    EXPECT_EQ(stats.cycles, kIters) << "device " << d;
    upload_total += stats.upload_mb;
  }
  EXPECT_NEAR(upload_total, 0.25 * kThreads * kIters, 1e-9);

  // Exports stay parsable after the concurrent run.
  std::ostringstream prom;
  sink.write_metrics_prometheus(prom);
  EXPECT_NE(prom.str().find("helios_client_cycles_total"),
            std::string::npos);
}

TEST(TelemetrySinkTest, InstallUninstallTracksGlobalState) {
  ASSERT_EQ(obs::active_tracer(), nullptr);
  {
    obs::TelemetrySink sink;
    sink.install();
    EXPECT_EQ(obs::active_tracer(), sink.tracer());
    EXPECT_EQ(obs::global_sink(), &sink);
    sink.uninstall();
    EXPECT_EQ(obs::active_tracer(), nullptr);
    EXPECT_EQ(obs::global_sink(), nullptr);
  }
  EXPECT_EQ(obs::active_tracer(), nullptr);
}

}  // namespace
}  // namespace helios
