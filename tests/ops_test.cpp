#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/rng.h"

namespace helios::tensor {
namespace {

Tensor mat(std::initializer_list<int> shape, std::initializer_list<float> v) {
  return Tensor(Shape(shape), std::vector<float>(v));
}

TEST(Elementwise, AddSubScale) {
  Tensor a = mat({2, 2}, {1, 2, 3, 4});
  Tensor b = mat({2, 2}, {5, 6, 7, 8});
  Tensor c = add(a, b);
  EXPECT_TRUE(c.allclose(mat({2, 2}, {6, 8, 10, 12})));
  Tensor d = sub(b, a);
  EXPECT_TRUE(d.allclose(mat({2, 2}, {4, 4, 4, 4})));
  scale_inplace(a, 2.0F);
  EXPECT_TRUE(a.allclose(mat({2, 2}, {2, 4, 6, 8})));
  axpy_inplace(a, -1.0F, d);
  EXPECT_TRUE(a.allclose(mat({2, 2}, {-2, 0, 2, 4})));
}

TEST(Elementwise, Mul) {
  Tensor a = mat({3}, {1, -2, 3});
  Tensor b = mat({3}, {4, 5, -6});
  EXPECT_TRUE(mul(a, b).allclose(mat({3}, {4, -10, -18})));
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(add_inplace(a, b), std::invalid_argument);
}

TEST(Reductions, SumNorms) {
  Tensor t = mat({4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(sum(t), -2.0);
  EXPECT_DOUBLE_EQ(l1_norm(t), 10.0);
  EXPECT_NEAR(l2_norm(t), std::sqrt(30.0), 1e-6);
  EXPECT_EQ(max_value(t), 3.0F);
}

TEST(Matmul, KnownProduct) {
  Tensor a = mat({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = mat({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_TRUE(c.allclose(mat({2, 2}, {58, 64, 139, 154})));
}

TEST(Matmul, InnerMismatchThrows) {
  Tensor a({2, 3}), b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, MaskedRowsSkipsInactive) {
  Tensor a = mat({2, 2}, {1, 2, 3, 4});
  Tensor b = mat({2, 2}, {1, 0, 0, 1});
  const std::vector<std::uint8_t> mask{0, 1};
  Tensor c;
  matmul_masked_rows_into(a, b, mask, c);
  EXPECT_TRUE(c.allclose(mat({2, 2}, {0, 0, 3, 4})));
}

TEST(Matmul, MaskedVariantsAgreeWithDenseReference) {
  util::Rng rng(5);
  const int m = 7, k = 5, n = 6;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor dense = matmul(a, b);
  Tensor masked;
  matmul_masked_rows_into(a, b, {}, masked);
  EXPECT_TRUE(dense.allclose(masked));
}

TEST(Matmul, TnMaskedAccumulate) {
  // c[k,n] += a^T b over active rows.
  util::Rng rng(6);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({4, 2}, rng);
  const std::vector<std::uint8_t> mask{1, 0, 1, 1};
  Tensor c({3, 2});
  matmul_tn_masked_accumulate(a, b, mask, c);
  // Reference: zero out masked rows and do full product.
  Tensor a2 = a, b2 = b;
  for (int j = 0; j < 3; ++j) a2.at(1, j) = 0.0F;
  for (int j = 0; j < 2; ++j) b2.at(1, j) = 0.0F;
  Tensor ref({3, 2});
  matmul_tn_masked_accumulate(a2, b2, {}, ref);
  EXPECT_TRUE(c.allclose(ref, 1e-4F));
}

TEST(Matmul, NtMaskedCols) {
  util::Rng rng(7);
  Tensor x = Tensor::randn({3, 4}, rng);   // [m,k]
  Tensor w = Tensor::randn({5, 4}, rng);   // [n,k]
  const std::vector<std::uint8_t> mask{1, 1, 0, 1, 0};
  Tensor y;
  matmul_nt_masked_cols_into(x, w, mask, y);
  EXPECT_EQ(y.shape(), (Shape{3, 5}));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(y.at(i, 2), 0.0F);
    EXPECT_EQ(y.at(i, 4), 0.0F);
    float ref = 0.0F;
    for (int kk = 0; kk < 4; ++kk) ref += x.at(i, kk) * w.at(1, kk);
    EXPECT_NEAR(y.at(i, 1), ref, 1e-5F);
  }
}

TEST(Matmul, NtMaskedRowsAccumulate) {
  util::Rng rng(8);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({5, 4}, rng);
  const std::vector<std::uint8_t> mask{0, 1, 1, 1, 1};
  (void)mask;
  Tensor c({3, 5});
  const std::vector<std::uint8_t> row_mask{1, 0, 1};
  matmul_nt_masked_rows_accumulate(a, b, row_mask, c);
  for (int j = 0; j < 5; ++j) EXPECT_EQ(c.at(1, j), 0.0F);
  float ref = 0.0F;
  for (int kk = 0; kk < 4; ++kk) ref += a.at(2, kk) * b.at(3, kk);
  EXPECT_NEAR(c.at(2, 3), ref, 1e-5F);
}

TEST(Im2col, IdentityKernelRoundTrip) {
  // 1x1 kernel, stride 1: cols equal the flattened image.
  Conv2dGeometry g{2, 3, 3, 1, 1, 0};
  util::Rng rng(9);
  Tensor x = Tensor::randn({2, 3, 3}, rng);
  Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
  im2col(x, g, cols);
  EXPECT_TRUE(cols.reshaped({2, 3, 3}).allclose(x));
}

TEST(Im2col, PaddingProducesZeros) {
  Conv2dGeometry g{1, 2, 2, 3, 1, 1};
  Tensor x = Tensor::full({1, 2, 2}, 1.0F);
  Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
  im2col(x, g, cols);
  // Top-left output position, top-left kernel tap reads padded zero.
  EXPECT_EQ(cols.at(0, 0), 0.0F);
  // Center taps read real pixels.
  EXPECT_EQ(cols.at(4, 0), 1.0F);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> — adjointness of unfold/fold.
  Conv2dGeometry g{2, 5, 5, 3, 2, 1};
  util::Rng rng(10);
  Tensor x = Tensor::randn({2, 5, 5}, rng);
  Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
  im2col(x, g, cols);
  Tensor c = Tensor::randn(cols.shape(), rng);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols.flat()[i]) * c.flat()[i];
  }
  Tensor folded({2, 5, 5});
  col2im_accumulate(c, g, folded);
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.flat()[i]) * folded.flat()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// Odd geometries for the unfold/fold property tests: strided, padded, 1x1
// kernels, kernel == stride (disjoint patches), and non-square inputs.
const Conv2dGeometry kOddGeometries[] = {
    {2, 5, 5, 3, 2, 1},   // stride 2 + pad
    {3, 4, 4, 1, 1, 0},   // 1x1 kernel
    {1, 9, 9, 3, 3, 0},   // kernel == stride: every pixel in one patch
    {2, 7, 3, 3, 1, 1},   // non-square input, pad
    {4, 6, 10, 5, 2, 2},  // non-square, stride 2, wide pad
};

TEST(Im2col, FoldUnfoldMatchesCoverageCounts) {
  // col2im(im2col(x)) == x * counts, where counts[p] is how many patches
  // cover pixel p (computed by folding an all-ones cols matrix). Exact in
  // float because each product is x * small-integer via repeated adds.
  for (const Conv2dGeometry& g : kOddGeometries) {
    util::Rng rng(21);
    Tensor x = Tensor::randn({g.in_channels, g.in_h, g.in_w}, rng);
    Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
    im2col(x, g, cols);
    Tensor folded({g.in_channels, g.in_h, g.in_w});
    col2im_accumulate(cols, g, folded);

    Tensor ones = Tensor::full(cols.shape(), 1.0F);
    Tensor counts({g.in_channels, g.in_h, g.in_w});
    col2im_accumulate(ones, g, counts);

    for (std::size_t i = 0; i < x.numel(); ++i) {
      EXPECT_NEAR(folded.flat()[i], x.flat()[i] * counts.flat()[i], 1e-4F)
          << "pixel " << i << " k=" << g.kernel << " s=" << g.stride
          << " p=" << g.pad;
    }
  }
}

TEST(Im2col, AdjointHoldsOnOddGeometries) {
  // <im2col(x), c> == <x, col2im(c)> for every odd geometry — fold must
  // stay the exact adjoint of unfold or conv2d backward silently skews.
  for (const Conv2dGeometry& g : kOddGeometries) {
    util::Rng rng(22);
    Tensor x = Tensor::randn({g.in_channels, g.in_h, g.in_w}, rng);
    Tensor cols({g.patch_size(), g.out_h() * g.out_w()});
    im2col(x, g, cols);
    Tensor c = Tensor::randn(cols.shape(), rng);
    double lhs = 0.0;
    for (std::size_t i = 0; i < cols.numel(); ++i) {
      lhs += static_cast<double>(cols.flat()[i]) * c.flat()[i];
    }
    Tensor folded({g.in_channels, g.in_h, g.in_w});
    col2im_accumulate(c, g, folded);
    double rhs = 0.0;
    for (std::size_t i = 0; i < x.numel(); ++i) {
      rhs += static_cast<double>(x.flat()[i]) * folded.flat()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-3)
        << "k=" << g.kernel << " s=" << g.stride << " p=" << g.pad;
  }
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng(11);
  Tensor logits = Tensor::randn({4, 7}, rng, 3.0F);
  Tensor probs;
  row_softmax(logits, probs);
  for (int i = 0; i < 4; ++i) {
    float s = 0.0F;
    for (int j = 0; j < 7; ++j) {
      EXPECT_GT(probs.at(i, j), 0.0F);
      s += probs.at(i, j);
    }
    EXPECT_NEAR(s, 1.0F, 1e-5F);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor logits = mat({1, 3}, {1000.0F, 999.0F, 998.0F});
  Tensor probs;
  row_softmax(logits, probs);
  EXPECT_FALSE(std::isnan(probs.at(0, 0)));
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
}

TEST(CrossEntropy, UniformLogitsLossIsLogC) {
  Tensor logits({2, 4});
  const std::vector<int> labels{1, 3};
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, labels, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  util::Rng rng(12);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> labels{0, 2, 4};
  Tensor grad;
  softmax_cross_entropy(logits, labels, grad);
  for (int i = 0; i < 3; ++i) {
    float s = 0.0F;
    for (int j = 0; j < 5; ++j) s += grad.at(i, j);
    EXPECT_NEAR(s, 0.0F, 1e-6F);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({2, 3});
  Tensor grad;
  const std::vector<int> bad{0, 3};
  EXPECT_THROW(softmax_cross_entropy(logits, bad, grad), std::out_of_range);
  const std::vector<int> wrong_count{0};
  EXPECT_THROW(softmax_cross_entropy(logits, wrong_count, grad),
               std::invalid_argument);
}

TEST(CountCorrect, ArgmaxMatching) {
  Tensor logits = mat({3, 3}, {5, 1, 1, 0, 9, 0, 1, 2, 3});
  const std::vector<int> labels{0, 1, 0};
  EXPECT_EQ(count_correct(logits, labels), 2);
}

}  // namespace
}  // namespace helios::tensor
