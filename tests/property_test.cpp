// Parameterized property sweeps over the library's core invariants.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/rotation.h"
#include "core/soft_training.h"
#include "data/partition.h"
#include "fl/submodel.h"
#include "models/zoo.h"
#include "nn/dense.h"
#include "tensor/ops.h"

namespace helios {
namespace {

// ---------------------------------------------------------------------------
// Property: for any volume, a random submodel mask meets every layer budget
// and total active count equals the budget sum.
// ---------------------------------------------------------------------------
class VolumeMaskProperty : public ::testing::TestWithParam<double> {};

TEST_P(VolumeMaskProperty, BudgetsExactAtEveryVolume) {
  const double volume = GetParam();
  nn::Model m = models::make_lenet({1, 16, 16, 6}, 3);
  util::Rng rng(17);
  const auto mask = fl::random_volume_mask(m, volume, rng);
  const auto ranges = fl::layer_ranges(m);
  const auto budgets = fl::layer_budgets(ranges, volume);
  int total = 0;
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    int active = 0;
    for (int j = 0; j < ranges[r].count; ++j) {
      active += mask[static_cast<std::size_t>(ranges[r].begin + j)];
    }
    EXPECT_EQ(active, budgets[r]) << "volume " << volume << " layer " << r;
    total += active;
  }
  EXPECT_EQ(total, fl::mask_active_count(mask));
}

INSTANTIATE_TEST_SUITE_P(Volumes, VolumeMaskProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.25, 0.35, 0.5,
                                           0.66, 0.75, 0.9, 1.0));

// ---------------------------------------------------------------------------
// Property: soft-training masks meet budgets and include forced neurons at
// every (volume, ps) combination.
// ---------------------------------------------------------------------------
class SoftTrainingProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SoftTrainingProperty, SelectionRespectsBudgetAndForcing) {
  const auto [volume, ps] = GetParam();
  nn::Model m = models::make_lenet({1, 12, 12, 4}, 5);
  core::SoftTrainerConfig cfg;
  cfg.keep_ratio = volume;
  cfg.ps = ps;
  cfg.seed = 23;
  core::SoftTrainer st(m, cfg);
  const std::vector<int> forced{0, 10};
  const auto mask = st.select_mask(forced);
  for (int f : forced) EXPECT_EQ(mask[static_cast<std::size_t>(f)], 1);
  const auto ranges = fl::layer_ranges(m);
  const auto budgets = fl::layer_budgets(ranges, volume);
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    int active = 0;
    for (int j = 0; j < ranges[r].count; ++j) {
      active += mask[static_cast<std::size_t>(ranges[r].begin + j)];
    }
    // Forced inclusions may overflow a layer's budget by at most the number
    // of forced neurons in that layer.
    int forced_here = 0;
    for (int f : forced) {
      forced_here += (f >= ranges[r].begin && f < ranges[r].begin + ranges[r].count);
    }
    EXPECT_GE(active, budgets[r]);
    EXPECT_LE(active, budgets[r] + forced_here);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VolumePsGrid, SoftTrainingProperty,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.8),
                       ::testing::Values(0.05, 0.1, 0.5, 1.0)));

// ---------------------------------------------------------------------------
// Property: partitioners produce exact partitions for any client count.
// ---------------------------------------------------------------------------
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionProperty, AllSchemesExact) {
  const auto [samples, clients] = GetParam();
  util::Rng rng(29);
  std::vector<int> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    labels[i] = static_cast<int>(rng.uniform_int(10));
  }
  EXPECT_TRUE(data::is_exact_partition(
      data::partition_iid(samples, clients, rng), samples));
  EXPECT_TRUE(data::is_exact_partition(
      data::partition_dirichlet(labels, clients, 10, 0.5, rng), samples));
  if (samples >= clients * 2) {
    EXPECT_TRUE(data::is_exact_partition(
        data::partition_shards(labels, clients, 2, rng), samples));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SampleClientGrid, PartitionProperty,
    ::testing::Combine(::testing::Values<std::size_t>(16, 100, 257, 1000),
                       ::testing::Values<std::size_t>(1, 2, 4, 7)));

// ---------------------------------------------------------------------------
// Property: rotation threshold formula across budgets.
// ---------------------------------------------------------------------------
class RotationProperty : public ::testing::TestWithParam<int> {};

TEST_P(RotationProperty, ThresholdFormula) {
  const int budget = GetParam();
  const int m = 120;
  core::RotationRegulator reg(m, budget);
  EXPECT_DOUBLE_EQ(reg.threshold(), 1.0 + static_cast<double>(m) / budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, RotationProperty,
                         ::testing::Values(1, 5, 12, 40, 120));

// ---------------------------------------------------------------------------
// Property: masked dense forward equals full forward on active units and is
// zero on inactive units, for a sweep of mask densities.
// ---------------------------------------------------------------------------
class MaskedDenseProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskedDenseProperty, ForwardConsistency) {
  const int keep_every = GetParam();
  util::Rng rng(31);
  nn::Dense layer(9, 12, rng);
  tensor::Tensor x = tensor::Tensor::randn({4, 9}, rng);
  const tensor::Tensor full = layer.forward(x, false);
  std::vector<std::uint8_t> mask(12, 0);
  for (int j = 0; j < 12; j += keep_every) mask[static_cast<std::size_t>(j)] = 1;
  layer.set_mask(mask);
  const tensor::Tensor masked = layer.forward(x, false);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (mask[static_cast<std::size_t>(j)]) {
        EXPECT_NEAR(masked.at(i, j), full.at(i, j), 1e-6F);
      } else {
        EXPECT_EQ(masked.at(i, j), 0.0F);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, MaskedDenseProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

// ---------------------------------------------------------------------------
// Property: model FLOPs scale monotonically with volume.
// ---------------------------------------------------------------------------
class FlopsMonotoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(FlopsMonotoneProperty, MaskedFlopsBelowFull) {
  const double volume = GetParam();
  nn::Model m = models::make_lenet({1, 16, 16, 6}, 7);
  const double full = m.forward_flops_per_sample();
  util::Rng rng(37);
  m.set_neuron_mask(fl::random_volume_mask(m, volume, rng));
  const double masked = m.forward_flops_per_sample();
  EXPECT_LE(masked, full);
  if (volume < 0.9) {
    EXPECT_LT(masked, full);
  }
  // FLOPs shrink at least roughly with the volume for conv/dense stacks
  // (first-layer input channels stay dense, so the bound is loose).
  EXPECT_GT(masked, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Volumes, FlopsMonotoneProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace helios
