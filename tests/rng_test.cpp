#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace helios::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(8);
  double s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.03);
  EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  Rng rng(12);
  const int n = 20000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.normal(3.0, 0.5);
  EXPECT_NEAR(s / n, 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(15);
  auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(16);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleThrowsWhenKExceedsN) {
  Rng rng(17);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(20);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(21), p2(21);
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(22);
  const std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(23);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

}  // namespace
}  // namespace helios::util
