#include <gtest/gtest.h>

#include <algorithm>

#include "core/rotation.h"
#include "util/rng.h"

namespace helios::core {
namespace {

TEST(Rotation, ThresholdMatchesPaperFormula) {
  // 1 + m / sum(P_i n_i).
  RotationRegulator reg(100, 25);
  EXPECT_DOUBLE_EQ(reg.threshold(), 1.0 + 100.0 / 25.0);
  reg.set_budget_total(50);
  EXPECT_DOUBLE_EQ(reg.threshold(), 3.0);
}

TEST(Rotation, ValidatesConstruction) {
  EXPECT_THROW(RotationRegulator(0, 1), std::invalid_argument);
  EXPECT_THROW(RotationRegulator(10, 0), std::invalid_argument);
}

TEST(Rotation, CountsSkippedCycles) {
  RotationRegulator reg(4, 2);  // threshold 3
  const std::vector<std::uint8_t> mask{1, 0, 0, 1};
  reg.record_cycle(mask);
  EXPECT_EQ(reg.skipped_cycles(0), 0);
  EXPECT_EQ(reg.skipped_cycles(1), 1);
  reg.record_cycle(mask);
  EXPECT_EQ(reg.skipped_cycles(1), 2);
  EXPECT_TRUE(reg.overdue().empty());
  reg.record_cycle(mask);
  // Neurons 1 and 2 hit the threshold (3 skipped cycles).
  EXPECT_EQ(reg.overdue(), (std::vector<int>{1, 2}));
}

TEST(Rotation, TrainingResetsCounter) {
  RotationRegulator reg(3, 1);  // threshold 4
  const std::vector<std::uint8_t> skip_all{0, 0, 0};
  for (int i = 0; i < 3; ++i) reg.record_cycle(skip_all);
  EXPECT_EQ(reg.skipped_cycles(1), 3);
  const std::vector<std::uint8_t> train_1{0, 1, 0};
  reg.record_cycle(train_1);
  EXPECT_EQ(reg.skipped_cycles(1), 0);
  EXPECT_EQ(reg.skipped_cycles(0), 4);
  EXPECT_EQ(reg.overdue(), (std::vector<int>{0, 2}));
}

TEST(Rotation, EmptyMaskMeansFullTraining) {
  RotationRegulator reg(3, 1);
  const std::vector<std::uint8_t> skip_all{0, 0, 0};
  for (int i = 0; i < 5; ++i) reg.record_cycle(skip_all);
  EXPECT_FALSE(reg.overdue().empty());
  reg.record_cycle({});  // full model trained
  EXPECT_TRUE(reg.overdue().empty());
}

TEST(Rotation, MaskSizeValidated) {
  RotationRegulator reg(3, 1);
  const std::vector<std::uint8_t> wrong{1, 0};
  EXPECT_THROW(reg.record_cycle(wrong), std::invalid_argument);
}

TEST(Rotation, GuaranteesBoundedStaleness) {
  // Under any adversarial selection pattern, no neuron's skip count can
  // exceed threshold for more than one cycle if the controller forces
  // overdue neurons back in — emulate that loop here.
  const int m = 12, budget = 3;
  RotationRegulator reg(m, budget);
  util::Rng rng(5);
  int worst = 0;
  std::vector<std::uint8_t> mask(m);
  for (int cycle = 0; cycle < 100; ++cycle) {
    const auto forced = reg.overdue();
    std::fill(mask.begin(), mask.end(), std::uint8_t{0});
    int chosen = 0;
    for (int f : forced) {
      mask[static_cast<std::size_t>(f)] = 1;
      ++chosen;
    }
    while (chosen < budget) {
      const auto pick = rng.uniform_int(m);
      if (!mask[pick]) {
        mask[pick] = 1;
        ++chosen;
      }
    }
    reg.record_cycle(mask);
    for (int j = 0; j < m; ++j) worst = std::max(worst, reg.skipped_cycles(j));
  }
  EXPECT_LE(worst, static_cast<int>(reg.threshold()) + 1);
}

}  // namespace
}  // namespace helios::core
