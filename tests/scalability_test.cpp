#include <gtest/gtest.h>

#include "core/scalability.h"
#include "test_support.h"

namespace helios::core {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

fl::Fleet base_fleet() {
  FleetOptions o;
  o.clients = 3;
  o.stragglers = 1;
  return make_fleet(o);
}

TEST(Scalability, CapableJoinerAdmittedAsCapable) {
  fl::Fleet fleet = base_fleet();
  fl::ClientConfig cfg;
  cfg.seed = 99;
  fl::Client& joiner = fleet.add_client(
      helios::testing::tiny_dataset(48), cfg,
      device::sim_scaled(device::edge_server()));
  ScalabilityManager mgr;
  const AdmissionResult res = mgr.admit(fleet, joiner.id());
  EXPECT_FALSE(res.straggler);
  EXPECT_DOUBLE_EQ(res.volume, 1.0);
  EXPECT_FALSE(joiner.is_straggler());
  EXPECT_GT(res.pace_seconds, 0.0);
}

TEST(Scalability, SlowJoinerFlaggedAndShrunk) {
  fl::Fleet fleet = base_fleet();
  fl::ClientConfig cfg;
  cfg.seed = 100;
  fl::Client& joiner = fleet.add_client(
      helios::testing::tiny_dataset(48), cfg,
      device::sim_scaled(device::deeplens_cpu()));
  ScalabilityManager mgr;
  const AdmissionResult res = mgr.admit(fleet, joiner.id());
  EXPECT_TRUE(res.straggler);
  EXPECT_TRUE(joiner.is_straggler());
  EXPECT_LT(res.volume, 1.0);
  EXPECT_DOUBLE_EQ(joiner.volume(), res.volume);
  EXPECT_GT(res.estimated_cycle_seconds, res.pace_seconds);
}

TEST(Scalability, ExistingStragglersUnaffectedByAdmission) {
  fl::Fleet fleet = base_fleet();
  const double existing_volume = fleet.client(2).volume();
  fl::ClientConfig cfg;
  cfg.seed = 101;
  fl::Client& joiner = fleet.add_client(
      helios::testing::tiny_dataset(48), cfg,
      device::sim_scaled(device::deeplens_gpu()));
  ScalabilityManager mgr;
  mgr.admit(fleet, joiner.id());
  EXPECT_DOUBLE_EQ(fleet.client(2).volume(), existing_volume);
}

TEST(Scalability, TimeBasedAdmissionAlsoWorks) {
  fl::Fleet fleet = base_fleet();
  fl::ClientConfig cfg;
  cfg.seed = 102;
  fl::Client& joiner = fleet.add_client(
      helios::testing::tiny_dataset(48), cfg,
      device::sim_scaled(device::deeplens_cpu()));
  ScalabilityManager mgr(/*use_profiling=*/false);
  const AdmissionResult res = mgr.admit(fleet, joiner.id());
  EXPECT_TRUE(res.straggler);
}

TEST(Scalability, UnknownClientRejected) {
  fl::Fleet fleet = base_fleet();
  ScalabilityManager mgr;
  EXPECT_THROW(mgr.admit(fleet, 77), std::invalid_argument);
}

TEST(Scalability, ValidatesConstruction) {
  EXPECT_THROW(ScalabilityManager(true, 1.0), std::invalid_argument);
  EXPECT_THROW(ScalabilityManager(true, 2.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace helios::core
