// Fast population-scale smoke: a 64-device long-tail fleet with cohort
// sampling and churn completes a short Helios run, stays memory-bounded
// (unsampled clients hold no replicas), and reports helios.sim.* metrics.
// Kept small (<= 64 devices, 3 rounds) and labeled `scale_smoke` so CI can
// run it on every change without paying for the full scale benchmarks.
#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/hierarchy.h"
#include "fl/transport.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "sim/sampler.h"

namespace helios {
namespace {

TEST(ScaleSmokeTest, SampledChurningFleetCompletesAndStaysBounded) {
  const int kDevices = 64;
  const int kCycles = 3;
  obs::TelemetrySink telemetry;
  const sim::PopulationGenerator pop(sim::mobile_longtail(kDevices));
  fl::Fleet fleet = sim::build_fleet(pop);
  fleet.set_telemetry(&telemetry);

  sim::CohortSampler::Options sopts;
  sopts.fraction = 0.1;
  sopts.seed = 17;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 0.0;  // no arrivals: fixed population
  copts.mean_lifetime_s = 0.0;     // immortal: churn plumbing only
  sim::ChurnProcess churn(pop, copts);
  core::HeliosStrategy strategy{core::HeliosConfig{}};
  strategy.set_cycle_hook(
      [&](fl::Fleet& f, int cycle) { churn.step(f, cycle); });

  const fl::RunResult r = strategy.run(fleet, kCycles);
  ASSERT_EQ(r.rounds.size(), static_cast<std::size_t>(kCycles));
  EXPECT_GE(r.rounds.back().test_accuracy, 0.0);
  EXPECT_LE(r.rounds.back().test_accuracy, 1.0);
  EXPECT_GT(r.rounds.back().virtual_time, 0.0);

  // Memory bound: only the final cohort is materialized, not the fleet.
  std::size_t materialized = 0;
  for (auto& c : fleet.clients()) materialized += c->materialized() ? 1 : 0;
  EXPECT_LT(materialized, static_cast<std::size_t>(kDevices) / 2);

  EXPECT_EQ(telemetry.metrics().gauge("helios.sim.population").value(),
            static_cast<double>(kDevices));
  EXPECT_GE(telemetry.metrics().counter("helios.sim.sampled_total").value(),
            static_cast<double>(kCycles));
  fleet.set_sampler(nullptr);
  fleet.set_telemetry(nullptr);
}

// Hierarchy smoke: the same sampled long-tail fleet aggregated through a
// depth-2 edge->root tree, under churn plumbing and 5% frame loss on both
// the device uplinks and the tree's own merge-frame links. Rounds must
// close (deadlines bound lossy links), tier telemetry must flow, and the
// unsampled population must stay hollow exactly as on the flat path.
TEST(ScaleSmokeTest, HierarchicalTreeUnderChurnAndLossCompletes) {
  const int kDevices = 64;
  const int kCycles = 3;
  obs::TelemetrySink telemetry;
  const sim::PopulationGenerator pop(sim::mobile_longtail(kDevices));
  fl::Fleet fleet = sim::build_fleet(pop);
  fleet.set_telemetry(&telemetry);

  agg::TreeTopology topo;
  topo.edge_nodes = 8;
  topo.edge_link.loss_prob = 0.05;
  topo.edge_link.latency_s = 0.005;
  topo.edge_deadline_s = 4000.0;
  fl::HierarchySession hier(fleet, topo);

  net::NetworkOptions nopts;
  nopts.mode = net::NetMode::kSimulated;
  nopts.channel.loss_prob = 0.05;
  nopts.channel.latency_s = 0.01;
  nopts.deadline_factor = 4.0;
  fl::NetworkSession session(fleet, nopts);

  sim::CohortSampler::Options sopts;
  sopts.fraction = 0.1;
  sopts.seed = 17;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 0.0;
  copts.mean_lifetime_s = 0.0;
  sim::ChurnProcess churn(pop, copts);
  core::HeliosStrategy strategy{core::HeliosConfig{}};
  strategy.set_cycle_hook(
      [&](fl::Fleet& f, int cycle) { churn.step(f, cycle); });

  const fl::RunResult r = strategy.run(fleet, kCycles);
  ASSERT_EQ(r.rounds.size(), static_cast<std::size_t>(kCycles));
  EXPECT_GT(r.rounds.back().virtual_time, 0.0);

  std::size_t materialized = 0;
  for (auto& c : fleet.clients()) materialized += c->materialized() ? 1 : 0;
  EXPECT_LT(materialized, static_cast<std::size_t>(kDevices) / 2);

  // Merge frames folded and forwarded at both tiers every round.
  EXPECT_GE(telemetry.metrics()
                .counter("helios.agg.frames_folded_total", {{"tier", "edge"}})
                .value(),
            static_cast<double>(kCycles));
  EXPECT_GT(telemetry.metrics()
                .counter("helios.agg.bytes_forwarded_total",
                         {{"tier", "edge"}})
                .value(),
            0.0);
  EXPECT_GE(telemetry.dashboard().tier("root").merges,
            static_cast<long long>(kCycles));
  fleet.set_sampler(nullptr);
  fleet.set_telemetry(nullptr);
}

}  // namespace
}  // namespace helios
