#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/zoo.h"
#include "nn/serialize.h"

namespace helios::nn {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Serialize, RoundTripRestoresParamsAndBuffers) {
  Model a = models::make_resnet18_lite({3, 8, 8, 4}, 51, 4, 1);
  // Mutate buffers so the round trip is non-trivial.
  auto buffers = a.buffers_flat();
  for (float& v : buffers) v += 0.25F;
  a.load_buffers(buffers);

  const std::string path = temp_path("ckpt_roundtrip.bin");
  save_checkpoint(a, path);

  Model b = models::make_resnet18_lite({3, 8, 8, 4}, 99, 4, 1);
  ASSERT_NE(a.params_flat(), b.params_flat());
  load_checkpoint(b, path);
  EXPECT_EQ(a.params_flat(), b.params_flat());
  EXPECT_EQ(a.buffers_flat(), b.buffers_flat());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsWrongArchitecture) {
  Model a = models::make_mlp({1, 4, 4, 3}, 52, 8);
  const std::string path = temp_path("ckpt_arch.bin");
  save_checkpoint(a, path);
  Model b = models::make_mlp({1, 4, 4, 3}, 52, 16);  // different hidden size
  EXPECT_THROW(load_checkpoint(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  Model m = models::make_mlp({1, 4, 4, 3}, 53, 8);
  EXPECT_THROW(load_checkpoint(m, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncatedFile) {
  Model a = models::make_mlp({1, 4, 4, 3}, 54, 8);
  const std::string path = temp_path("ckpt_trunc.bin");
  save_checkpoint(a, path);
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  Model b = models::make_mlp({1, 4, 4, 3}, 54, 8);
  EXPECT_THROW(load_checkpoint(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Model m = models::make_mlp({1, 4, 4, 3}, 55, 8);
  EXPECT_THROW(load_checkpoint(m, "/nonexistent/dir/ckpt.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace helios::nn
