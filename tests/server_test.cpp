#include <gtest/gtest.h>

#include "fl/server.h"
#include "test_support.h"

namespace helios::fl {
namespace {

nn::Model ref_model(std::uint64_t seed = 3) {
  return models::make_mlp({1, 4, 4, 3}, seed, 5);
}

ClientUpdate update_with(const std::vector<float>& params,
                         std::size_t samples,
                         std::vector<std::uint8_t> mask = {}) {
  ClientUpdate u;
  u.params = params;
  u.sample_count = samples;
  u.trained_mask = std::move(mask);
  return u;
}

TEST(Server, InitialGlobalMatchesReference) {
  nn::Model m = ref_model();
  auto expected = m.params_flat();
  Server server(std::move(m));
  EXPECT_EQ(server.global(), expected);
}

TEST(Server, FullUpdatesAverageWithSampleWeights) {
  Server server(ref_model());
  const std::size_t p = server.param_count();
  ClientUpdate a = update_with(std::vector<float>(p, 1.0F), 10);
  ClientUpdate b = update_with(std::vector<float>(p, 4.0F), 30);
  std::vector<ClientUpdate> ups{a, b};
  server.aggregate(ups, {});
  // (10*1 + 30*4) / 40 = 3.25
  for (float v : server.global()) EXPECT_NEAR(v, 3.25F, 1e-5F);
}

TEST(Server, UnweightedAverageWhenSampleWeightingOff) {
  Server server(ref_model());
  const std::size_t p = server.param_count();
  std::vector<ClientUpdate> ups{
      update_with(std::vector<float>(p, 1.0F), 10),
      update_with(std::vector<float>(p, 3.0F), 90)};
  AggOptions opts;
  opts.sample_weighting = false;
  server.aggregate(ups, opts);
  for (float v : server.global()) EXPECT_NEAR(v, 2.0F, 1e-5F);
}

TEST(Server, PartialUpdateOnlyTouchesTrainedNeurons) {
  Server server(ref_model());
  const auto before = server.global();
  const std::size_t p = server.param_count();
  const int m = server.neuron_total();
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m), 0);
  mask[1] = 1;
  std::vector<ClientUpdate> ups{
      update_with(std::vector<float>(p, 7.0F), 10, mask)};
  server.aggregate(ups, {});
  const auto& after = server.global();
  const auto& neurons = server.reference_model().neurons();
  // Neuron 1 slices moved to 7; other neuron-owned params unchanged;
  // common (head) params moved to 7 as well.
  std::vector<bool> owned(p, false), of_neuron1(p, false);
  for (int j = 0; j < m; ++j) {
    for (const nn::FlatSlice& s : neurons[static_cast<std::size_t>(j)].slices) {
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        owned[f] = true;
        if (j == 1) of_neuron1[f] = true;
      }
    }
  }
  for (std::size_t f = 0; f < p; ++f) {
    if (of_neuron1[f] || !owned[f]) {
      EXPECT_NEAR(after[f], 7.0F, 1e-5F);
    } else {
      EXPECT_EQ(after[f], before[f]);
    }
  }
}

TEST(Server, UntouchedNeuronsKeepGlobalWhenAllPartial) {
  Server server(ref_model());
  const auto before = server.global();
  const std::size_t p = server.param_count();
  const int m = server.neuron_total();
  std::vector<std::uint8_t> mask_a(static_cast<std::size_t>(m), 0);
  std::vector<std::uint8_t> mask_b(static_cast<std::size_t>(m), 0);
  mask_a[0] = 1;
  mask_b[2] = 1;
  std::vector<ClientUpdate> ups{
      update_with(std::vector<float>(p, 1.0F), 10, mask_a),
      update_with(std::vector<float>(p, 5.0F), 10, mask_b)};
  server.aggregate(ups, {});
  // Neuron 1 (trained by nobody) keeps the old global values.
  const auto& neurons = server.reference_model().neurons();
  for (const nn::FlatSlice& s : neurons[1].slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      EXPECT_EQ(server.global()[f], before[f]);
    }
  }
}

TEST(Server, HeteroWeightsFavorCompleteModels) {
  Server server(ref_model());
  const std::size_t p = server.param_count();
  const int m = server.neuron_total();
  // Both devices train neuron 0; device B trains only neuron 0 (partial),
  // device A trains everything. Same sample counts.
  std::vector<std::uint8_t> mask_b(static_cast<std::size_t>(m), 0);
  mask_b[0] = 1;
  std::vector<ClientUpdate> ups{
      update_with(std::vector<float>(p, 0.0F), 10),
      update_with(std::vector<float>(p, 10.0F), 10, mask_b)};
  AggOptions plain;
  Server s1(ref_model());
  s1.aggregate(ups, plain);
  AggOptions hetero;
  hetero.hetero_volume_weights = true;
  hetero.alpha_scope = AggOptions::AlphaScope::kNeuronOnly;
  Server s2(ref_model());
  s2.aggregate(ups, hetero);
  // On neuron 0's parameters, hetero weighting pulls the average toward the
  // full-model device (value 0), i.e. below the plain average.
  const auto& neurons = s2.reference_model().neurons();
  const nn::FlatSlice s0 = neurons[0].slices[0];
  EXPECT_LT(s2.global()[s0.offset], s1.global()[s0.offset]);
  // With kNeuronOnly scope the common (head) parameters are alpha-exempt:
  // equal under both options.
  const std::size_t last = p - 1;  // head bias is the final parameter
  EXPECT_NEAR(s1.global()[last], s2.global()[last], 1e-6F);
  // Literal Eq. 10 (damping 1.0, whole update): the straggler is suppressed
  // even harder on neuron 0.
  AggOptions literal;
  literal.hetero_volume_weights = true;
  literal.alpha_damping = 1.0;
  Server s3(ref_model());
  s3.aggregate(ups, literal);
  EXPECT_LT(s3.global()[s0.offset], s1.global()[s0.offset]);
  EXPECT_THROW(
      [&] {
        AggOptions bad;
        bad.alpha_damping = 1.5;
        Server s4(ref_model());
        s4.aggregate(ups, bad);
      }(),
      std::invalid_argument);
}

TEST(Server, NaiveMergeDilutesWithStaleValues) {
  // per_neuron_merge=false (the S.T. Only ablation): a straggler's stale
  // untrained parameters enter the average and pull it toward the old
  // global value.
  Server server(ref_model());
  const std::size_t p = server.param_count();
  const int m = server.neuron_total();
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m), 0);
  mask[0] = 1;
  // The straggler reports stale zeros everywhere except neuron 0.
  ClientUpdate partial = update_with(std::vector<float>(p, 0.0F), 10, mask);
  ClientUpdate full = update_with(std::vector<float>(p, 8.0F), 10);
  std::vector<ClientUpdate> ups{full, partial};
  AggOptions naive;
  naive.per_neuron_merge = false;
  server.aggregate(ups, naive);
  // Neuron 1 (untouched by the straggler) is diluted to 4 instead of 8.
  const auto& neurons = server.reference_model().neurons();
  const nn::FlatSlice s1 = neurons[1].slices[0];
  EXPECT_NEAR(server.global()[s1.offset], 4.0F, 1e-5F);
  // With the per-neuron merge, it would take the full device's value.
  Server server2(ref_model());
  server2.aggregate(ups, {});
  EXPECT_NEAR(server2.global()[s1.offset], 8.0F, 1e-5F);
}

TEST(Server, MixInterpolates) {
  Server server(ref_model());
  const std::size_t p = server.param_count();
  server.set_global(std::vector<float>(p, 2.0F));
  ClientUpdate u = update_with(std::vector<float>(p, 6.0F), 1);
  server.mix(u, 0.25);
  for (float v : server.global()) EXPECT_NEAR(v, 3.0F, 1e-6F);
  EXPECT_THROW(server.mix(u, 1.5), std::invalid_argument);
}

TEST(Server, AggregateValidatesSizes) {
  Server server(ref_model());
  std::vector<ClientUpdate> bad{update_with(std::vector<float>(3, 1.0F), 1)};
  EXPECT_THROW(server.aggregate(bad, {}), std::invalid_argument);
  std::vector<ClientUpdate> bad_mask{update_with(
      std::vector<float>(server.param_count(), 1.0F), 1, {1, 0})};
  EXPECT_THROW(server.aggregate(bad_mask, {}), std::invalid_argument);
}

TEST(Server, EmptyAggregateIsNoOp) {
  Server server(ref_model());
  const auto before = server.global();
  server.aggregate({}, {});
  EXPECT_EQ(server.global(), before);
}

TEST(Server, EvaluateAccuracyInRange) {
  Server server(ref_model());
  auto test = helios::testing::tiny_dataset(30, 3, 1, 4);
  const double acc = server.evaluate_accuracy(test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace helios::fl
