#include <gtest/gtest.h>

#include <cmath>

#include "models/zoo.h"
#include "nn/sgd.h"

namespace helios::nn {
namespace {

using tensor::Tensor;

TEST(Sgd, RejectsBadHyperparameters) {
  EXPECT_THROW(Sgd(0.0F), std::invalid_argument);
  EXPECT_THROW(Sgd(-0.1F), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1F, 1.0F), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1F, -0.1F), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1F, 0.0F, -1.0F), std::invalid_argument);
}

TEST(Sgd, PlainStepIsWMinusLrG) {
  Model m = models::make_mlp({1, 2, 2, 2}, 1, 3);
  Sgd opt(0.5F);
  auto before = m.params_flat();
  // Manufacture a known gradient: all ones.
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);
  auto after = m.params_flat();
  for (std::size_t f = 0; f < before.size(); ++f) {
    EXPECT_NEAR(after[f], before[f] - 0.5F, 1e-6F);
  }
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Model m = models::make_mlp({1, 2, 2, 2}, 2, 3);
  Sgd opt(0.1F, 0.0F, 0.5F);
  auto before = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(0.0F);
  opt.step(m);
  auto after = m.params_flat();
  for (std::size_t f = 0; f < before.size(); ++f) {
    EXPECT_NEAR(after[f], before[f] * (1.0F - 0.1F * 0.5F), 1e-6F);
  }
}

TEST(Sgd, MomentumAccumulates) {
  Model m = models::make_mlp({1, 2, 2, 2}, 3, 3);
  Sgd opt(1.0F, 0.5F);
  auto w0 = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);  // v=1, w -= 1
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);  // v=1.5, w -= 1.5
  auto w2 = m.params_flat();
  for (std::size_t f = 0; f < w0.size(); ++f) {
    EXPECT_NEAR(w2[f], w0[f] - 2.5F, 1e-5F);
  }
}

TEST(Sgd, FrozenParamsSkipMomentumAndDecay) {
  Model m = models::make_mlp({1, 2, 2, 2}, 4, 4);
  Sgd opt(0.3F, 0.9F, 0.1F);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m.neuron_total()), 1);
  mask[0] = 0;
  m.set_neuron_mask(mask);
  auto before = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);
  opt.step(m);
  auto after = m.params_flat();
  for (const FlatSlice& s : m.neurons()[0].slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      EXPECT_EQ(after[f], before[f]);
    }
  }
}

TEST(Sgd, ClipRescalesLargeGradients) {
  Model m = models::make_mlp({1, 2, 2, 2}, 5, 3);
  const std::size_t n = m.param_count();
  // All-ones gradient has L2 norm sqrt(n); clip to 1.0 and verify the step
  // is exactly lr / sqrt(n).
  Sgd opt(1.0F, 0.0F, 0.0F, 1.0F);
  auto before = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(1.0F);
  opt.step(m);
  auto after = m.params_flat();
  const float expected_step = 1.0F / std::sqrt(static_cast<float>(n));
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_NEAR(before[f] - after[f], expected_step, 1e-5F);
  }
}

TEST(Sgd, ClipLeavesSmallGradientsAlone) {
  Model m = models::make_mlp({1, 2, 2, 2}, 6, 3);
  Sgd opt(1.0F, 0.0F, 0.0F, 1e6F);
  auto before = m.params_flat();
  for (const ParamRef& ref : m.param_refs()) ref.grad->fill(0.5F);
  opt.step(m);
  auto after = m.params_flat();
  for (std::size_t f = 0; f < before.size(); ++f) {
    EXPECT_NEAR(before[f] - after[f], 0.5F, 1e-5F);
  }
}

TEST(Sgd, NegativeClipRejected) {
  EXPECT_THROW(Sgd(0.1F, 0.0F, 0.0F, -1.0F), std::invalid_argument);
}

TEST(Sgd, LrSetterApplies) {
  Sgd opt(0.1F);
  opt.set_lr(0.01F);
  EXPECT_FLOAT_EQ(opt.lr(), 0.01F);
}

}  // namespace
}  // namespace helios::nn
