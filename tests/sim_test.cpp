// Population-scale simulation subsystem: generated device specs are pure
// functions of (seed, index); the paper-4dev preset reproduces the
// hand-built strategy-test fleet bit-exactly; cohort sampling is
// deterministic across runs and thread counts and joiner-invariant;
// unsampled clients stay unmaterialized (memory-bounded fleets); churn
// events are deterministic on the virtual clock.
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/helios_strategy.h"
#include "fl/sync.h"
#include "fl/transport.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "sim/sampler.h"
#include "test_support.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

// ---- PopulationGenerator ---------------------------------------------------

void expect_same_spec(const sim::DeviceSpec& a, const sim::DeviceSpec& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.profile.name, b.profile.name);
  EXPECT_EQ(a.profile.compute_gflops, b.profile.compute_gflops);
  EXPECT_EQ(a.profile.mem_bandwidth_mbps, b.profile.mem_bandwidth_mbps);
  EXPECT_EQ(a.profile.net_bandwidth_mbps, b.profile.net_bandwidth_mbps);
  EXPECT_EQ(a.profile.memory_mb, b.profile.memory_mb);
  EXPECT_EQ(a.channel.latency_s, b.channel.latency_s);
  EXPECT_EQ(a.channel.jitter_s, b.channel.jitter_s);
  EXPECT_EQ(a.shard_samples, b.shard_samples);
  EXPECT_EQ(a.label_classes, b.label_classes);
  EXPECT_EQ(a.straggler, b.straggler);
  EXPECT_EQ(a.volume, b.volume);
}

TEST(PopulationTest, DeviceSpecsArePureFunctionsOfSeedAndIndex) {
  const sim::PopulationGenerator a(sim::mobile_longtail(16));
  const sim::PopulationGenerator b(sim::mobile_longtail(16));
  // Query out of order, including a joiner index beyond the population
  // size: every spec depends only on (seed, index).
  expect_same_spec(a.device(40), b.device(40));
  for (int i : {15, 0, 7, 3}) {
    expect_same_spec(a.device(i), b.device(i));
  }
  // A different seed draws a different population.
  const sim::PopulationGenerator c(sim::mobile_longtail(16, 9));
  EXPECT_NE(a.device(0).profile.compute_gflops,
            c.device(0).profile.compute_gflops);
}

TEST(PopulationTest, LongTailPopulationIsHeterogeneousAndBounded) {
  const sim::PopulationGenerator pop(sim::mobile_longtail(64));
  const sim::PopulationConfig& cfg = pop.config();
  double min_c = 1e30, max_c = 0.0;
  for (int i = 0; i < pop.size(); ++i) {
    const sim::DeviceSpec d = pop.device(i);
    EXPECT_GT(d.profile.compute_gflops, 0.0) << i;
    min_c = std::min(min_c, d.profile.compute_gflops);
    max_c = std::max(max_c, d.profile.compute_gflops);
    EXPECT_GT(d.shard_samples, 0) << i;
    EXPECT_LE(d.shard_samples, cfg.max_shard_samples) << i;
    ASSERT_EQ(d.label_classes.size(),
              static_cast<std::size_t>(cfg.classes_per_device))
        << i;
    for (int cls : d.label_classes) {
      EXPECT_GE(cls, 0);
      EXPECT_LT(cls, cfg.classes);
    }
  }
  // Log-normal compute with sigma ~0.9 must actually spread the fleet.
  EXPECT_GT(max_c / min_c, 3.0);
}

TEST(PopulationTest, Paper4DevPresetReproducesHandBuiltFleet) {
  const int kCycles = 3;
  fl::RunResult hand, preset;
  std::vector<float> hand_global, preset_global;
  {
    fl::Fleet fleet = testing::make_fleet();
    hand = core::HeliosStrategy(core::HeliosConfig{}).run(fleet, kCycles);
    hand_global.assign(fleet.server().global().begin(),
                       fleet.server().global().end());
  }
  {
    const sim::PopulationGenerator pop(sim::paper_4dev());
    fl::Fleet fleet = sim::build_fleet(pop);
    preset = core::HeliosStrategy(core::HeliosConfig{}).run(fleet, kCycles);
    preset_global.assign(fleet.server().global().begin(),
                         fleet.server().global().end());
  }
  ASSERT_EQ(hand.rounds.size(), preset.rounds.size());
  for (std::size_t i = 0; i < hand.rounds.size(); ++i) {
    EXPECT_EQ(hand.rounds[i].virtual_time, preset.rounds[i].virtual_time);
    EXPECT_EQ(hand.rounds[i].test_accuracy, preset.rounds[i].test_accuracy);
    EXPECT_EQ(hand.rounds[i].mean_train_loss,
              preset.rounds[i].mean_train_loss);
    EXPECT_EQ(hand.rounds[i].upload_mb, preset.rounds[i].upload_mb);
  }
  ASSERT_EQ(hand_global.size(), preset_global.size());
  EXPECT_EQ(std::memcmp(hand_global.data(), preset_global.data(),
                        hand_global.size() * sizeof(float)),
            0)
      << "paper-4dev preset is not bit-identical to the hand-built fleet";
}

// ---- CohortSampler ---------------------------------------------------------

std::vector<std::vector<int>> cohort_sequence(fl::Fleet& fleet,
                                              const sim::CohortSampler& s,
                                              int rounds) {
  std::vector<std::vector<int>> seq;
  const std::vector<fl::Client*> active = fleet.active_clients();
  for (int r = 0; r < rounds; ++r) {
    std::vector<int> ids;
    for (fl::Client* c : s.sample(active, r)) ids.push_back(c->id());
    seq.push_back(std::move(ids));
  }
  return seq;
}

TEST(CohortSamplerTest, SameSeedSameCohortSequenceAcrossRuns) {
  const sim::PopulationGenerator pop(sim::mobile_longtail(16));
  sim::CohortSampler::Options opts;
  opts.fraction = 0.3;
  opts.seed = 9;
  std::vector<std::vector<int>> first, second;
  {
    fl::Fleet fleet = sim::build_fleet(pop);
    sim::CohortSampler sampler(opts);
    first = cohort_sequence(fleet, sampler, 12);
  }
  {
    fl::Fleet fleet = sim::build_fleet(pop);
    sim::CohortSampler sampler(opts);
    second = cohort_sequence(fleet, sampler, 12);
  }
  EXPECT_EQ(first, second);
  // Sampling actually thins the roster: not every round is everyone.
  bool some_partial = false;
  for (const auto& round : first) some_partial |= round.size() < 16;
  EXPECT_TRUE(some_partial);
}

TEST(CohortSamplerTest, JoinerLeavesExistingMembershipBitIdentical) {
  const sim::PopulationGenerator pop8(sim::mobile_longtail(8));
  const sim::PopulationGenerator pop12(sim::mobile_longtail(12));
  sim::CohortSampler::Options opts;
  opts.fraction = 0.4;
  opts.seed = 21;
  opts.non_empty = false;  // the fallback is the one roster-dependent path
  const sim::CohortSampler sampler(opts);

  fl::Fleet small = sim::build_fleet(pop8);
  fl::Fleet big = sim::build_fleet(pop12);
  const std::vector<fl::Client*> small_active = small.active_clients();
  const std::vector<fl::Client*> big_active = big.active_clients();
  for (int r = 0; r < 20; ++r) {
    std::set<int> small_ids, big_ids;
    for (fl::Client* c : sampler.sample(small_active, r)) {
      small_ids.insert(c->id());
    }
    for (fl::Client* c : sampler.sample(big_active, r)) {
      if (c->id() < 8) big_ids.insert(c->id());
    }
    EXPECT_EQ(small_ids, big_ids) << "round " << r;
  }
}

struct ThreadGuard {
  ~ThreadGuard() { util::set_global_threads(0); }
};

struct Snapshot {
  fl::RunResult result;
  std::vector<float> global;
};

Snapshot run_sampled_with_threads(int threads, int cycles) {
  util::set_global_threads(threads);
  const sim::PopulationGenerator pop(sim::mobile_longtail(12));
  fl::Fleet fleet = sim::build_fleet(pop);
  sim::CohortSampler::Options opts;
  opts.fraction = 0.4;
  opts.seed = 3;
  sim::CohortSampler sampler(opts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);
  core::HeliosStrategy strategy{core::HeliosConfig{}};
  Snapshot snap;
  snap.result = strategy.run(fleet, cycles);
  snap.global.assign(fleet.server().global().begin(),
                     fleet.server().global().end());
  fleet.set_sampler(nullptr);
  return snap;
}

TEST(CohortSamplerTest, SampledRunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Snapshot seq = run_sampled_with_threads(1, 3);
  const Snapshot par = run_sampled_with_threads(4, 3);
  ASSERT_EQ(seq.result.rounds.size(), par.result.rounds.size());
  for (std::size_t i = 0; i < seq.result.rounds.size(); ++i) {
    EXPECT_EQ(seq.result.rounds[i].virtual_time,
              par.result.rounds[i].virtual_time)
        << "cycle " << i;
    EXPECT_EQ(seq.result.rounds[i].test_accuracy,
              par.result.rounds[i].test_accuracy)
        << "cycle " << i;
    EXPECT_EQ(seq.result.rounds[i].mean_train_loss,
              par.result.rounds[i].mean_train_loss)
        << "cycle " << i;
  }
  ASSERT_EQ(seq.global.size(), par.global.size());
  EXPECT_EQ(std::memcmp(seq.global.data(), par.global.data(),
                        seq.global.size() * sizeof(float)),
            0)
      << "sampled run differs between thread counts";
}

TEST(CohortSamplerTest, RejectsFractionOutOfRange) {
  sim::CohortSampler::Options opts;
  opts.fraction = 0.0;
  EXPECT_THROW(sim::CohortSampler{opts}, std::invalid_argument);
  opts.fraction = 1.5;
  EXPECT_THROW(sim::CohortSampler{opts}, std::invalid_argument);
}

// ---- Memory-bounded client state -------------------------------------------

TEST(MemoryTest, UnsampledClientsAreNeverMaterialized) {
  const sim::PopulationGenerator pop(sim::mobile_longtail(24));
  fl::Fleet fleet = sim::build_fleet(pop);
  // Building the fleet materializes no replicas at all.
  EXPECT_EQ(fleet.live_replica_bytes(), 0U);
  for (auto& c : fleet.clients()) EXPECT_FALSE(c->materialized());

  sim::CohortSampler::Options opts;
  opts.fraction = 0.15;
  opts.seed = 4;
  sim::CohortSampler sampler(opts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);
  core::HeliosStrategy strategy{core::HeliosConfig{}};
  const fl::RunResult r = strategy.run(fleet, 2);
  ASSERT_EQ(r.rounds.size(), 2U);

  // After the run only the last cohort's replicas are live; the rest of
  // the population was hibernated (or never touched).
  std::size_t materialized = 0;
  for (auto& c : fleet.clients()) materialized += c->materialized() ? 1 : 0;
  EXPECT_GT(materialized, 0U);
  EXPECT_LT(materialized, fleet.size() / 2);
  EXPECT_GT(fleet.live_replica_bytes(), 0U);
  fleet.set_sampler(nullptr);
}

TEST(MemoryTest, HibernatedClientRematerializesBitIdentically) {
  fl::Fleet fleet = testing::make_fleet();
  fl::Client& c = fleet.client(0);
  const std::vector<float> base(fleet.server().global().begin(),
                                fleet.server().global().end());
  const fl::ClientUpdate first =
      c.run_cycle(base, fleet.server().global_buffers(), {});
  c.hibernate();
  EXPECT_FALSE(c.materialized());
  EXPECT_EQ(c.replica_bytes(), 0U);
  // The replica rebuilds from (spec, seed) and the next cycle starts from
  // the same server snapshot: identical update bytes.
  const fl::ClientUpdate again =
      c.run_cycle(base, fleet.server().global_buffers(), {});
  // Note: the data loader keeps advancing across hibernation, so compare
  // against a twin fleet that never hibernated.
  fl::Fleet twin = testing::make_fleet();
  fl::Client& t = twin.client(0);
  const fl::ClientUpdate t_first =
      t.run_cycle(base, twin.server().global_buffers(), {});
  const fl::ClientUpdate t_again =
      t.run_cycle(base, twin.server().global_buffers(), {});
  ASSERT_EQ(first.params.size(), t_first.params.size());
  EXPECT_EQ(std::memcmp(first.params.data(), t_first.params.data(),
                        first.params.size() * sizeof(float)),
            0);
  ASSERT_EQ(again.params.size(), t_again.params.size());
  EXPECT_EQ(std::memcmp(again.params.data(), t_again.params.data(),
                        again.params.size() * sizeof(float)),
            0)
      << "hibernation changed the training trajectory";
}

// ---- ChurnProcess ----------------------------------------------------------

TEST(ChurnTest, ArrivalsAndDeparturesAreDeterministic) {
  auto run_once = [] {
    sim::PopulationConfig cfg = sim::mobile_longtail(4);
    const sim::PopulationGenerator pop(cfg);
    fl::Fleet fleet = sim::build_fleet(pop);
    sim::ChurnOptions copts;
    copts.arrival_rate_per_s = 0.5;
    copts.mean_lifetime_s = 6.0;
    copts.seed = 13;
    copts.max_devices = 10;
    copts.admit_arrivals = false;  // keep the test free of profiling cost
    sim::ChurnProcess churn(pop, copts);
    std::vector<std::size_t> sizes;
    std::vector<int> arrived, departed;
    for (int step = 0; step < 8; ++step) {
      fleet.clock().advance(2.0);
      const sim::RoundChurn rc = churn.step(fleet, step);
      arrived.insert(arrived.end(), rc.arrived.begin(), rc.arrived.end());
      departed.insert(departed.end(), rc.departed.begin(), rc.departed.end());
      sizes.push_back(fleet.size());
    }
    return std::make_tuple(sizes, arrived, departed);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  // 16 virtual seconds at 0.5 arrivals/s against a cap of 10: the fleet
  // grew, and 6 s mean lifetimes produced departures.
  const auto& [sizes, arrived, departed] = a;
  EXPECT_GT(arrived.size(), 0U);
  EXPECT_GT(departed.size(), 0U);
  EXPECT_GT(sizes.back(), 4U);
}

TEST(ChurnTest, LifetimesAreJoinerInvariant) {
  sim::ChurnOptions copts;
  copts.mean_lifetime_s = 100.0;
  copts.seed = 55;
  const sim::PopulationGenerator pop4(sim::mobile_longtail(4));
  const sim::PopulationGenerator pop8(sim::mobile_longtail(8));
  fl::Fleet small = sim::build_fleet(pop4);
  fl::Fleet big = sim::build_fleet(pop8);
  sim::ChurnProcess churn_small(pop4, copts);
  sim::ChurnProcess churn_big(pop8, copts);
  churn_small.step(small, 0);
  churn_big.step(big, 0);
  for (int id = 0; id < 4; ++id) {
    EXPECT_EQ(churn_small.death_time(id), churn_big.death_time(id))
        << "device " << id
        << ": population size changed an existing device's lifetime";
  }
}

TEST(ChurnTest, DepartedDevicesLeaveTheRosterAndReleaseMemory) {
  const sim::PopulationGenerator pop(sim::mobile_longtail(6));
  fl::Fleet fleet = sim::build_fleet(pop);
  for (auto& c : fleet.clients()) c->model();  // materialize everyone
  EXPECT_GT(fleet.live_replica_bytes(), 0U);
  sim::ChurnOptions copts;
  copts.mean_lifetime_s = 1.0;  // everyone dies almost immediately
  copts.seed = 2;
  sim::ChurnProcess churn(pop, copts);
  churn.step(fleet, 0);           // schedules every death
  fleet.clock().advance(100.0);   // far past every lifetime
  const sim::RoundChurn rc = churn.step(fleet, 1);
  EXPECT_EQ(rc.departed.size(), 6U);
  EXPECT_TRUE(fleet.active_clients().empty());
  EXPECT_EQ(fleet.live_replica_bytes(), 0U);
}

// ---- Telemetry -------------------------------------------------------------

TEST(SimTelemetryTest, CohortAndChurnMetricsAreEmitted) {
  obs::TelemetrySink telemetry;
  const sim::PopulationGenerator pop(sim::mobile_longtail(8));
  fl::Fleet fleet = sim::build_fleet(pop);
  fleet.set_telemetry(&telemetry);
  sim::CohortSampler::Options opts;
  opts.fraction = 0.5;
  sim::CohortSampler sampler(opts);
  fleet.set_sampler(&sampler);
  fleet.round_roster(0);
  EXPECT_EQ(telemetry.metrics().gauge("helios.sim.population").value(), 8.0);
  EXPECT_GE(telemetry.metrics().counter("helios.sim.sampled_total").value(),
            1.0);

  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 10.0;  // immediate arrivals
  copts.seed = 1;
  copts.max_devices = 10;
  copts.admit_arrivals = false;
  sim::ChurnProcess churn(pop, copts);
  churn.step(fleet, 1);         // initializes the arrival stream
  fleet.clock().advance(5.0);   // ~50 expected arrivals against a cap of 10
  churn.step(fleet, 2);
  EXPECT_GE(telemetry.metrics().counter("helios.sim.arrivals_total").value(),
            1.0);
  fleet.set_sampler(nullptr);
  fleet.set_telemetry(nullptr);
}

}  // namespace
}  // namespace helios
