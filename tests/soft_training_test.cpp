#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/soft_training.h"
#include "models/zoo.h"

namespace helios::core {
namespace {

nn::Model model_for_tests(std::uint64_t seed = 2) {
  return models::make_lenet({1, 12, 12, 4}, seed);
}

TEST(SoftTrainer, ValidatesConfig) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig bad;
  bad.keep_ratio = 0.0;
  EXPECT_THROW(SoftTrainer(m, bad), std::invalid_argument);
  bad.keep_ratio = 0.5;
  bad.ps = 0.0;
  EXPECT_THROW(SoftTrainer(m, bad), std::invalid_argument);
}

TEST(SoftTrainer, MaskMeetsPerLayerBudgets) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.3;
  SoftTrainer st(m, cfg);
  const auto mask = st.select_mask();
  const auto ranges = fl::layer_ranges(m);
  const auto budgets = fl::layer_budgets(ranges, 0.3);
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    int active = 0;
    for (int j = 0; j < ranges[r].count; ++j) {
      active += mask[static_cast<std::size_t>(ranges[r].begin + j)];
    }
    EXPECT_EQ(active, budgets[r]);
  }
  EXPECT_EQ(st.budget_total(),
            std::accumulate(budgets.begin(), budgets.end(), 0));
}

TEST(SoftTrainer, TopContributorsAlwaysSelected) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.4;
  cfg.ps = 0.1;
  SoftTrainer st(m, cfg);

  // Manufacture a contribution profile: neuron 0 of each layer dominant.
  auto before = m.params_flat();
  auto after = before;
  const auto ranges = fl::layer_ranges(m);
  for (const auto& r : ranges) {
    const auto& n = m.neurons()[static_cast<std::size_t>(r.begin)];
    for (const nn::FlatSlice& s : n.slices) {
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        after[f] += 10.0F;
      }
    }
  }
  st.update_contributions(before, after, {});

  // The dominant neuron must be in every subsequent selection.
  for (int draw = 0; draw < 5; ++draw) {
    const auto mask = st.select_mask();
    for (const auto& r : ranges) {
      EXPECT_EQ(mask[static_cast<std::size_t>(r.begin)], 1)
          << "top-U neuron dropped in layer at " << r.begin;
    }
  }
}

TEST(SoftTrainer, RotationReachesEveryNeuron) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.3;
  cfg.seed = 9;
  SoftTrainer st(m, cfg);
  std::vector<int> times_selected(static_cast<std::size_t>(m.neuron_total()), 0);
  // With uniform (zero) contributions the random fill rotates; in enough
  // cycles every neuron should join at least once.
  for (int cycle = 0; cycle < 60; ++cycle) {
    const auto mask = st.select_mask();
    for (std::size_t j = 0; j < mask.size(); ++j) {
      times_selected[j] += mask[j];
    }
  }
  for (std::size_t j = 0; j < times_selected.size(); ++j) {
    EXPECT_GT(times_selected[j], 0) << "neuron " << j << " never trained";
  }
}

TEST(SoftTrainer, ForcedNeuronsAreIncluded) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.2;
  SoftTrainer st(m, cfg);
  const std::vector<int> forced{3, 7, 40};
  const auto mask = st.select_mask(forced);
  for (int f : forced) {
    EXPECT_EQ(mask[static_cast<std::size_t>(f)], 1);
  }
  const std::vector<int> out_of_range{m.neuron_total()};
  EXPECT_THROW(st.select_mask(out_of_range), std::out_of_range);
}

TEST(SoftTrainer, UpdateContributionsOnlyForTrained) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.5;
  SoftTrainer st(m, cfg);
  auto before = m.params_flat();
  auto after = before;
  for (float& v : after) v += 1.0F;
  std::vector<std::uint8_t> trained(static_cast<std::size_t>(m.neuron_total()), 0);
  trained[5] = 1;
  st.update_contributions(before, after, trained);
  EXPECT_GT(st.contributions()[5], 0.0);
  EXPECT_EQ(st.contributions()[6], 0.0);
}

TEST(SoftTrainer, ContributionIsMeanAbsChange) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  SoftTrainer st(m, cfg);
  auto before = m.params_flat();
  auto after = before;
  const auto& n0 = m.neurons()[0];
  for (const nn::FlatSlice& s : n0.slices) {
    for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
      after[f] += 2.0F;
    }
  }
  st.update_contributions(before, after, {});
  EXPECT_NEAR(st.contributions()[0], 2.0, 1e-5);
}

TEST(SoftTrainer, KeepRatioAdjustable) {
  nn::Model m = model_for_tests();
  SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.5;
  SoftTrainer st(m, cfg);
  const int full_budget = st.budget_total();
  st.set_keep_ratio(0.25);
  EXPECT_LT(st.budget_total(), full_budget);
  EXPECT_THROW(st.set_keep_ratio(0.0), std::invalid_argument);
}

TEST(SoftTrainer, MaskSizeMismatchRejected) {
  nn::Model m = model_for_tests();
  SoftTrainer st(m, {});
  auto params = m.params_flat();
  std::vector<std::uint8_t> bad_mask(3, 1);
  EXPECT_THROW(st.update_contributions(params, params, bad_mask),
               std::invalid_argument);
  std::vector<float> short_params(4);
  EXPECT_THROW(st.update_contributions(short_params, params, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace helios::core
