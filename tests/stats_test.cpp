#include <gtest/gtest.h>

#include "util/stats.h"

namespace helios::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.118033988749895, 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

TEST(Stats, MovingAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto ma = moving_average(xs, 2);
  ASSERT_EQ(ma.size(), 4u);
  EXPECT_DOUBLE_EQ(ma[0], 1.0);
  EXPECT_DOUBLE_EQ(ma[1], 1.5);
  EXPECT_DOUBLE_EQ(ma[2], 2.5);
  EXPECT_DOUBLE_EQ(ma[3], 3.5);
}

TEST(Stats, MovingAverageWindowOne) {
  const std::vector<double> xs{5.0, 7.0};
  const auto ma = moving_average(xs, 1);
  EXPECT_DOUBLE_EQ(ma[0], 5.0);
  EXPECT_DOUBLE_EQ(ma[1], 7.0);
}

TEST(Stats, FirstReaching) {
  const std::vector<double> xs{0.1, 0.4, 0.3, 0.8, 0.9};
  EXPECT_EQ(first_reaching(xs, 0.35), 1u);
  EXPECT_EQ(first_reaching(xs, 0.85), 4u);
  EXPECT_EQ(first_reaching(xs, 0.95), npos);
}

}  // namespace
}  // namespace helios::util
