#include <gtest/gtest.h>

#include "core/straggler_id.h"
#include "test_support.h"

namespace helios::core {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

FleetOptions unflagged() {
  FleetOptions o;
  o.stragglers = 2;  // clients 2,3 get slow profiles
  return o;
}

fl::Fleet fresh_fleet() {
  fl::Fleet fleet = make_fleet(unflagged());
  // Clear the helper's pre-flagging: identification is under test here.
  for (auto& c : fleet.clients()) {
    c->set_straggler(false);
  }
  return fleet;
}

TEST(TimeBased, RanksSlowestFirst) {
  fl::Fleet fleet = fresh_fleet();
  const StragglerReport report =
      StragglerIdentifier::time_based(fleet, /*top_k=*/2);
  ASSERT_EQ(report.timings.size(), 4u);
  for (std::size_t i = 1; i < report.timings.size(); ++i) {
    EXPECT_GE(report.timings[i - 1].seconds, report.timings[i].seconds);
  }
  // The two DeepLens-profile clients (ids 2, 3) are the slowest.
  auto ids = report.straggler_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{2, 3}));
}

TEST(TimeBased, TopKBoundsValidated) {
  fl::Fleet fleet = fresh_fleet();
  EXPECT_THROW(StragglerIdentifier::time_based(fleet, 4),
               std::invalid_argument);
  EXPECT_THROW(StragglerIdentifier::time_based(fleet, -1),
               std::invalid_argument);
  // top_k = 0 is legal: no stragglers.
  const auto report = StragglerIdentifier::time_based(fleet, 0);
  EXPECT_TRUE(report.straggler_ids().empty());
}

TEST(ResourceBased, FlagsSlowDevices) {
  fl::Fleet fleet = fresh_fleet();
  const StragglerReport report =
      StragglerIdentifier::resource_based(fleet, 1.5);
  auto ids = report.straggler_ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{2, 3}));
  EXPECT_GT(report.pace_seconds, 0.0);
}

TEST(ResourceBased, PaceIsSlowestCapableDevice) {
  fl::Fleet fleet = fresh_fleet();
  const StragglerReport report =
      StragglerIdentifier::resource_based(fleet, 1.5);
  double expected = 0.0;
  for (const auto& t : report.timings) {
    if (!t.straggler) expected = std::max(expected, t.seconds);
  }
  EXPECT_DOUBLE_EQ(report.pace_seconds, expected);
}

TEST(ResourceBased, NeverFlagsEveryone) {
  FleetOptions o;
  o.clients = 3;
  o.stragglers = 3;  // all slow profiles
  fl::Fleet fleet = make_fleet(o);
  for (auto& c : fleet.clients()) c->set_straggler(false);
  const auto report = StragglerIdentifier::resource_based(fleet, 1.01);
  int flagged = 0;
  for (const auto& t : report.timings) flagged += t.straggler;
  EXPECT_LT(flagged, 3);
}

TEST(ResourceBased, PaceFactorValidated) {
  fl::Fleet fleet = fresh_fleet();
  EXPECT_THROW(StragglerIdentifier::resource_based(fleet, 1.0),
               std::invalid_argument);
}

TEST(Apply, WritesFlagsOntoClients) {
  fl::Fleet fleet = fresh_fleet();
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  StragglerIdentifier::apply(fleet, report);
  EXPECT_FALSE(fleet.client(0).is_straggler());
  EXPECT_FALSE(fleet.client(1).is_straggler());
  EXPECT_TRUE(fleet.client(2).is_straggler());
  EXPECT_TRUE(fleet.client(3).is_straggler());
}

TEST(TimeBasedAndResourceBased, AgreeOnThisFleet) {
  fl::Fleet fleet = fresh_fleet();
  auto a = StragglerIdentifier::time_based(fleet, 2).straggler_ids();
  auto b = StragglerIdentifier::resource_based(fleet, 1.5).straggler_ids();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace helios::core
