// Baseline orchestration strategies: invariants of timing, participation
// and aggregation (learning-quality comparisons live in integration_test).
#include <gtest/gtest.h>

#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/sync.h"
#include "test_support.h"

namespace helios::fl {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

TEST(SyncFL, RecordsEveryCycleWithMonotoneTime) {
  Fleet fleet = make_fleet();
  SyncFL strategy;
  const RunResult res = strategy.run(fleet, 5);
  EXPECT_EQ(res.method, "Syn. FL");
  ASSERT_EQ(res.rounds.size(), 5u);
  double prev = 0.0;
  for (const auto& r : res.rounds) {
    EXPECT_GT(r.virtual_time, prev);
    prev = r.virtual_time;
    EXPECT_GE(r.test_accuracy, 0.0);
    EXPECT_LE(r.test_accuracy, 1.0);
  }
}

TEST(SyncFL, RoundTimeDominatedByStraggler) {
  Fleet fleet = make_fleet();
  // Slowest participant (full model on DeepLens CPU) bounds the round time.
  const double straggler_cycle =
      fleet.client(3).estimate_cycle_seconds({});
  SyncFL strategy;
  const RunResult res = strategy.run(fleet, 2);
  EXPECT_GE(res.rounds[0].virtual_time, straggler_cycle * 0.99);
}

TEST(AsyncFL, CapableCyclesAreFasterThanSync) {
  Fleet sync_fleet = make_fleet();
  Fleet async_fleet = make_fleet();
  const RunResult sync_res = SyncFL().run(sync_fleet, 3);
  const RunResult async_res = AsyncFL().run(async_fleet, 3);
  EXPECT_LT(async_res.rounds.back().virtual_time,
            sync_res.rounds.back().virtual_time);
}

TEST(AsyncFL, FixedPeriodNames) {
  EXPECT_EQ(AsyncFL().name(), "Asyn. FL");
  EXPECT_EQ(AsyncFL(2).name(), "Asyn. FL (period 2)");
  EXPECT_THROW(AsyncFL(-1), std::invalid_argument);
  EXPECT_THROW(AsyncFL(0, 0.0), std::invalid_argument);
  EXPECT_THROW(AsyncFL(0, 1.5), std::invalid_argument);
}

TEST(AsyncFL, StaleStragglerMergesDragTheGlobalModel) {
  // The fully-async baseline mixes stale straggler models with a fixed
  // weight; relative to the sync run on the same fleet, the straggler's
  // merge must move the global model toward its (old) snapshot. We simply
  // verify the mechanism runs and records all cycles with advancing time.
  Fleet fleet = make_fleet();
  const RunResult res = AsyncFL().run(fleet, 6);
  ASSERT_EQ(res.rounds.size(), 6u);
  for (std::size_t i = 1; i < res.rounds.size(); ++i) {
    EXPECT_GT(res.rounds[i].virtual_time, res.rounds[i - 1].virtual_time);
  }
}

TEST(AsyncFL, RequiresCapableDevices) {
  FleetOptions o;
  o.clients = 2;
  o.stragglers = 2;
  Fleet fleet = make_fleet(o);
  AsyncFL strategy;
  EXPECT_THROW(strategy.run(fleet, 1), std::logic_error);
}

TEST(AsyncFL, RunsWithFixedPeriod) {
  Fleet fleet = make_fleet();
  const RunResult res = AsyncFL(2).run(fleet, 4);
  EXPECT_EQ(res.rounds.size(), 4u);
}

TEST(Afo, RecordsRequestedCycles) {
  Fleet fleet = make_fleet();
  Afo strategy(0.6, 0.5);
  const RunResult res = strategy.run(fleet, 4);
  EXPECT_EQ(res.method, "AFO");
  ASSERT_EQ(res.rounds.size(), 4u);
  for (std::size_t i = 1; i < res.rounds.size(); ++i) {
    EXPECT_GT(res.rounds[i].virtual_time, res.rounds[i - 1].virtual_time);
  }
}

TEST(Afo, ValidatesParameters) {
  EXPECT_THROW(Afo(0.0), std::invalid_argument);
  EXPECT_THROW(Afo(1.5), std::invalid_argument);
  EXPECT_THROW(Afo(0.5, -1.0), std::invalid_argument);
}

TEST(RandomSubmodel, StragglersUploadPartialMasks) {
  Fleet fleet = make_fleet();
  // Wrap via direct run; verify timing benefits: random submodel rounds are
  // shorter than sync-full rounds because stragglers shrink.
  Fleet sync_fleet = make_fleet();
  const RunResult sync_res = SyncFL().run(sync_fleet, 2);
  const RunResult rnd_res = RandomSubmodel().run(fleet, 2);
  EXPECT_EQ(rnd_res.method, "Random");
  EXPECT_LT(rnd_res.rounds.back().virtual_time,
            sync_res.rounds.back().virtual_time);
}

TEST(StaticPrune, RunsAndIsCheaperThanSync) {
  Fleet fleet = make_fleet();
  Fleet sync_fleet = make_fleet();
  const RunResult sp = StaticPrune().run(fleet, 2);
  const RunResult sync_res = SyncFL().run(sync_fleet, 2);
  EXPECT_EQ(sp.method, "Static Prune");
  EXPECT_LT(sp.rounds.back().virtual_time,
            sync_res.rounds.back().virtual_time);
}

TEST(Metrics, RunResultSummaries) {
  RunResult res;
  res.rounds = {{0, 1.0, 0.2, 1.0},
                {1, 2.0, 0.5, 0.8},
                {2, 3.0, 0.7, 0.6},
                {3, 4.0, 0.8, 0.5}};
  EXPECT_NEAR(res.final_accuracy(2), 0.75, 1e-12);
  EXPECT_EQ(res.cycles_to_accuracy(0.5), 1u);
  EXPECT_DOUBLE_EQ(res.time_to_accuracy(0.5), 2.0);
  EXPECT_EQ(res.cycles_to_accuracy(0.9), RunResult::npos);
  EXPECT_EQ(res.time_to_accuracy(0.9), RunResult::never);
  EXPECT_GT(res.accuracy_variance(4), 0.0);
}

TEST(Metrics, EmptyRunIsSafe) {
  RunResult res;
  EXPECT_EQ(res.final_accuracy(), 0.0);
  EXPECT_EQ(res.cycles_to_accuracy(0.1), RunResult::npos);
  EXPECT_EQ(res.accuracy_variance(), 0.0);
}

TEST(Fleet, CapableAndStragglerPartition) {
  Fleet fleet = make_fleet();
  EXPECT_EQ(fleet.stragglers().size(), 2u);
  EXPECT_EQ(fleet.capable().size(), 2u);
  EXPECT_EQ(fleet.size(), 4u);
}

}  // namespace
}  // namespace helios::fl
