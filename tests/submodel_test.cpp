#include <gtest/gtest.h>

#include "fl/submodel.h"
#include "models/zoo.h"

namespace helios::fl {
namespace {

TEST(Submodel, LayerRangesTileNeuronIndex) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 1);
  const auto ranges = layer_ranges(m);
  // conv1, conv2, fc1, fc2.
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].count, 6);
  EXPECT_EQ(ranges[1].count, 16);
  EXPECT_EQ(ranges[2].count, 120);
  EXPECT_EQ(ranges[3].count, 84);
  int cursor = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, cursor);
    cursor += r.count;
  }
  EXPECT_EQ(cursor, m.neuron_total());
}

TEST(Submodel, BudgetsRoundAndFloorAtOne) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 2);
  const auto ranges = layer_ranges(m);
  const auto half = layer_budgets(ranges, 0.5);
  EXPECT_EQ(half[0], 3);
  EXPECT_EQ(half[1], 8);
  EXPECT_EQ(half[2], 60);
  EXPECT_EQ(half[3], 42);
  const auto tiny = layer_budgets(ranges, 0.01);
  for (int b : tiny) EXPECT_GE(b, 1);
  EXPECT_THROW(layer_budgets(ranges, 0.0), std::invalid_argument);
  EXPECT_THROW(layer_budgets(ranges, 1.5), std::invalid_argument);
}

TEST(Submodel, RandomMaskMeetsBudgetsPerLayer) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 3);
  util::Rng rng(4);
  const auto mask = random_volume_mask(m, 0.25, rng);
  EXPECT_EQ(mask.size(), static_cast<std::size_t>(m.neuron_total()));
  const auto ranges = layer_ranges(m);
  const auto budgets = layer_budgets(ranges, 0.25);
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    int active = 0;
    for (int j = 0; j < ranges[r].count; ++j) {
      active += mask[static_cast<std::size_t>(ranges[r].begin + j)];
    }
    EXPECT_EQ(active, budgets[r]);
  }
}

TEST(Submodel, RandomMasksVaryAcrossDraws) {
  nn::Model m = models::make_lenet({1, 28, 28, 10}, 5);
  util::Rng rng(6);
  const auto m1 = random_volume_mask(m, 0.5, rng);
  const auto m2 = random_volume_mask(m, 0.5, rng);
  EXPECT_NE(m1, m2);
  EXPECT_EQ(mask_active_count(m1), mask_active_count(m2));
}

TEST(Submodel, FullVolumeSelectsEverything) {
  nn::Model m = models::make_mlp({1, 4, 4, 3}, 7, 9);
  util::Rng rng(8);
  const auto mask = random_volume_mask(m, 1.0, rng);
  EXPECT_EQ(mask_active_count(mask), m.neuron_total());
}

}  // namespace
}  // namespace helios::fl
