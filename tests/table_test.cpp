#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace helios::util {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  Table t({"method", "acc"});
  t.add_row({"Helios", "0.95"});
  t.add_row({"Syn. FL", "0.91"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("Helios"), std::string::npos);
  EXPECT_NE(out.find("0.91"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);  // must not crash; row padded to 3 cells
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Fig. 5 reproduction");
  EXPECT_NE(os.str().find("Fig. 5 reproduction"), std::string::npos);
}

}  // namespace
}  // namespace helios::util
