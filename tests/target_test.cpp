#include <gtest/gtest.h>

#include "core/straggler_id.h"
#include "core/target.h"
#include "test_support.h"

namespace helios::core {
namespace {

using helios::testing::FleetOptions;
using helios::testing::make_fleet;

fl::Fleet identified_fleet() {
  FleetOptions o;
  o.stragglers = 2;
  fl::Fleet fleet = make_fleet(o);
  for (auto& c : fleet.clients()) c->set_straggler(false);
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  StragglerIdentifier::apply(fleet, report);
  return fleet;
}

TEST(Target, CycleSecondsMonotoneInVolume) {
  fl::Fleet fleet = identified_fleet();
  fl::Client& straggler = fleet.client(3);
  const double t25 = TargetDeterminer::cycle_seconds_at_volume(straggler, 0.25);
  const double t50 = TargetDeterminer::cycle_seconds_at_volume(straggler, 0.5);
  const double t100 = TargetDeterminer::cycle_seconds_at_volume(straggler, 1.0);
  EXPECT_LT(t25, t50);
  EXPECT_LT(t50, t100);
  EXPECT_DOUBLE_EQ(t100, straggler.estimate_cycle_seconds({}));
}

TEST(Target, ProfiledVolumeFitsPace) {
  fl::Fleet fleet = identified_fleet();
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  const auto volumes = TargetDeterminer::assign_profiled(fleet, report);
  ASSERT_EQ(volumes.size(), 4u);
  EXPECT_DOUBLE_EQ(volumes[0], 1.0);
  EXPECT_DOUBLE_EQ(volumes[1], 1.0);
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_LT(volumes[i], 1.0);
    EXPECT_GE(volumes[i], 0.05);
    // Binary search guarantee: chosen volume's cycle fits the pace (with a
    // small numerical slack), unless clamped at min_volume.
    fl::Client& c = fleet.client(i);
    if (volumes[i] > 0.05 + 1e-9) {
      EXPECT_LE(TargetDeterminer::cycle_seconds_at_volume(c, volumes[i]),
                report.pace_seconds * 1.02);
    }
    EXPECT_DOUBLE_EQ(c.volume(), volumes[i]);
  }
}

TEST(Target, ProfiledVolumeIsMaximalUpToSearchResolution) {
  fl::Fleet fleet = identified_fleet();
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  const auto volumes = TargetDeterminer::assign_profiled(fleet, report);
  fl::Client& c = fleet.client(3);
  if (volumes[3] < 0.93 && volumes[3] > 0.06) {
    EXPECT_GT(
        TargetDeterminer::cycle_seconds_at_volume(c, volumes[3] + 0.07),
        report.pace_seconds);
  }
}

TEST(Target, PredefinedLevelsAssignSlowerToSmaller) {
  fl::Fleet fleet = identified_fleet();
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  TargetDeterminer::assign_predefined(fleet, report, {0.5, 0.25});
  // Slowest straggler gets the last (most aggressive) level.
  int slowest_id = report.timings.front().client_id;
  double slowest_volume = 0.0, other_volume = 0.0;
  for (auto& c : fleet.clients()) {
    if (!c->is_straggler()) continue;
    if (c->id() == slowest_id) {
      slowest_volume = c->volume();
    } else {
      other_volume = c->volume();
    }
  }
  EXPECT_DOUBLE_EQ(slowest_volume, 0.25);
  EXPECT_DOUBLE_EQ(other_volume, 0.5);
}

TEST(Target, PredefinedRejectsEmptyLevels) {
  fl::Fleet fleet = identified_fleet();
  const auto report = StragglerIdentifier::resource_based(fleet, 1.5);
  EXPECT_THROW(TargetDeterminer::assign_predefined(fleet, report, {}),
               std::invalid_argument);
}

TEST(Target, ProfileVolumeValidatesArguments) {
  fl::Fleet fleet = identified_fleet();
  fl::Client& c = fleet.client(3);
  EXPECT_THROW(TargetDeterminer::profile_volume(c, 0.0), std::invalid_argument);
  EXPECT_THROW(TargetDeterminer::profile_volume(c, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Target, ImpossiblePaceFallsBackToMinVolume) {
  fl::Fleet fleet = identified_fleet();
  fl::Client& c = fleet.client(3);
  const double v = TargetDeterminer::profile_volume(c, 1e-9, 0.05);
  EXPECT_DOUBLE_EQ(v, 0.05);
}

TEST(Target, DefaultLevelsAreDescendingInRange) {
  const auto& levels = TargetDeterminer::default_levels();
  ASSERT_FALSE(levels.empty());
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(levels[i], levels[i - 1]);
  }
  for (double l : levels) {
    EXPECT_GT(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

}  // namespace
}  // namespace helios::core
