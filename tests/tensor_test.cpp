#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace helios::tensor {
namespace {

TEST(Shape, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({5, 0}), 0u);
  EXPECT_EQ(shape_to_string({2, 3}), "(2, 3)");
  EXPECT_THROW(shape_numel({-1, 2}), std::invalid_argument);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  for (float v : t.flat()) EXPECT_EQ(v, 0.0F);
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.ndim(), 2);
}

TEST(Tensor, FromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_EQ(t.at(1, 1), 4.0F);
}

TEST(Tensor, FromValuesSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, StorageIsCachelineAligned) {
  // The SIMD kernel backends rely on element 0 of every tensor being
  // 64-byte aligned (tensor.h AlignedAllocator); cover odd sizes so
  // reallocation paths are exercised, not just the first allocation.
  for (int len : {1, 3, 8, 17, 64, 1000}) {
    Tensor t({len});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % kTensorAlignment,
              0u)
        << "len=" << len;
    Tensor copy = t;
    EXPECT_EQ(
        reinterpret_cast<std::uintptr_t>(copy.data()) % kTensorAlignment, 0u);
  }
  util::Rng rng(3);
  Tensor r = Tensor::randn({5, 7}, rng);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.data()) % kTensorAlignment,
            0u);
  Tensor v({3}, {1.0F, 2.0F, 3.0F});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kTensorAlignment,
            0u);
}

TEST(Tensor, DimNegativeIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_THROW(t.dim(-4), std::out_of_range);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 9.0F;
  EXPECT_EQ(t.flat()[5], 9.0F);
  Tensor u({2, 2, 2});
  u.at(1, 0, 1) = 7.0F;
  EXPECT_EQ(u.flat()[5], 7.0F);
}

TEST(Tensor, FourDimAccess) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 1.5F;
  EXPECT_EQ(t.flat()[t.numel() - 1], 1.5F);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  t.at(0, 5) = 3.0F;
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.at(1, 1), 3.0F);
  EXPECT_THROW(t.reshape({5, 2}), std::invalid_argument);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5F);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5F);
  t.fill(-1.0F);
  for (float v : t.flat()) EXPECT_EQ(v, -1.0F);
}

TEST(Tensor, RandnStatistics) {
  util::Rng rng(3);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0F);
  double s = 0.0, s2 = 0.0;
  for (float v : t.flat()) {
    s += v;
    s2 += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.numel());
  EXPECT_NEAR(s / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 4.0, 0.15);
}

TEST(Tensor, UniformBounds) {
  util::Rng rng(4);
  Tensor t = Tensor::uniform({1000}, rng, -2.0F, 3.0F);
  for (float v : t.flat()) {
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Tensor, Allclose) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {1, 2, 3, 4.00001F});
  EXPECT_TRUE(a.allclose(b, 1e-3F));
  EXPECT_FALSE(a.allclose(b, 1e-7F));
  Tensor c({4}, {1, 2, 3, 4});
  EXPECT_FALSE(a.allclose(c));  // shape mismatch
}

}  // namespace
}  // namespace helios::tensor
