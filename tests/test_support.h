// Shared helpers for the Helios test suite.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "data/synthetic.h"
#include "nn/layer.h"
#include "nn/model.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace helios::testing {

/// Scalar loss L = sum_i c_i * y_i over the flattened layer output, with a
/// fixed random projection c. dL/dy = c, which exercises every output path.
struct ProjectionLoss {
  tensor::Tensor c;

  explicit ProjectionLoss(const tensor::Tensor& y, util::Rng& rng)
      : c(tensor::Tensor::randn(y.shape(), rng)) {}

  double value(const tensor::Tensor& y) const {
    double s = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y.flat()[i]) * c.flat()[i];
    }
    return s;
  }

  tensor::Tensor grad() const { return c; }
};

/// Central-difference derivative of `f` with respect to `*w`.
inline double numerical_derivative(float* w, const std::function<double()>& f,
                                   float eps = 1e-3F) {
  const float saved = *w;
  *w = saved + eps;
  const double up = f();
  *w = saved - eps;
  const double down = f();
  *w = saved;
  return (up - down) / (2.0 * static_cast<double>(eps));
}

/// Relative-or-absolute closeness for gradient checks. float32 forward
/// passes leave ~1e-3-scale noise in central differences of deep models, so
/// tiny gradients are compared absolutely.
inline bool grad_close(double analytic, double numeric, double tol = 5e-2,
                       double abs_tol = 1e-3) {
  if (std::fabs(analytic - numeric) < abs_tol) return true;
  const double scale =
      std::max({std::fabs(analytic), std::fabs(numeric), 1e-2});
  return std::fabs(analytic - numeric) / scale < tol;
}

/// Gradient-checks a single layer: analytic parameter gradients and input
/// gradients against central differences, on `checks` randomly chosen
/// entries per tensor. Returns the number of mismatches.
inline int gradcheck_layer(nn::Layer& layer, tensor::Tensor x,
                           util::Rng& rng, int checks = 24,
                           double tol = 5e-2) {
  // Fixed projection loss built from one forward pass.
  tensor::Tensor y0 = layer.forward(x, /*training=*/true);
  ProjectionLoss loss(y0, rng);

  auto forward_loss = [&]() {
    return loss.value(layer.forward(x, /*training=*/true));
  };

  // Analytic gradients.
  layer.zero_grad();
  layer.forward(x, /*training=*/true);
  tensor::Tensor dx = layer.backward(loss.grad());

  int mismatches = 0;
  // Parameter gradients.
  auto params = layer.params();
  auto grads = layer.grads();
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (int k = 0; k < checks; ++k) {
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(params[t]->numel()));
      const double analytic = grads[t]->flat()[idx];
      const double numeric =
          numerical_derivative(&params[t]->flat()[idx], forward_loss);
      if (!grad_close(analytic, numeric, tol)) ++mismatches;
    }
  }
  // Input gradients.
  for (int k = 0; k < checks; ++k) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.uniform_int(x.numel()));
    const double analytic = dx.flat()[idx];
    const double numeric =
        numerical_derivative(&x.flat()[idx], forward_loss);
    if (!grad_close(analytic, numeric, tol)) ++mismatches;
  }
  return mismatches;
}

/// Tiny synthetic dataset helper.
inline data::Dataset tiny_dataset(int samples, int classes = 4,
                                  int channels = 1, int hw = 8,
                                  std::uint64_t seed = 5) {
  data::SyntheticSpec spec;
  spec.samples = samples;
  spec.channels = channels;
  spec.height = hw;
  spec.width = hw;
  spec.classes = classes;
  spec.noise = 0.3F;
  util::Rng rng(seed);
  return data::make_synthetic(spec, rng);
}

}  // namespace helios::testing

#include "data/partition.h"
#include "device/resource.h"
#include "fl/fleet.h"

namespace helios::testing {

struct FleetOptions {
  int clients = 4;
  int stragglers = 2;           // flagged + given `volume`
  double volume = 0.35;
  int samples_per_client = 48;
  int classes = 4;
  int hw = 8;                   // image side (1 channel)
  float lr = 0.08F;
  int batch = 8;
  float noise = 0.6F;
  std::uint64_t seed = 11;
  bool non_iid = false;
};

/// Small MLP federation for strategy tests: the last `stragglers` clients
/// get slow profiles, straggler flags and the given volume.
inline fl::Fleet make_fleet(const FleetOptions& o = {}) {
  data::SyntheticSpec spec;
  spec.samples = o.samples_per_client * o.clients;
  spec.channels = 1;
  spec.height = spec.width = o.hw;
  spec.classes = o.classes;
  spec.noise = o.noise;
  util::Rng rng(o.seed);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 160;
  data::Dataset test = data::make_synthetic(spec, rng);

  fl::Fleet fleet(models::mlp_spec({1, o.hw, o.hw, o.classes}, 24),
                  std::move(test), o.seed);
  const data::Partition parts =
      o.non_iid ? data::partition_shards(train.labels,
                                         static_cast<std::size_t>(o.clients),
                                         2, rng)
                : data::partition_iid(static_cast<std::size_t>(train.size()),
                                      static_cast<std::size_t>(o.clients),
                                      rng);
  for (int i = 0; i < o.clients; ++i) {
    fl::ClientConfig cfg;
    cfg.seed = o.seed + static_cast<std::uint64_t>(i);
    cfg.lr = o.lr;
    cfg.batch_size = o.batch;
    const bool straggler = i >= o.clients - o.stragglers;
    fl::Client& c = fleet.add_client(
        data::subset(train, parts[static_cast<std::size_t>(i)]), cfg,
        device::sim_scaled(straggler ? device::deeplens_cpu()
                                     : device::edge_server()));
    if (straggler) {
      c.set_straggler(true);
      c.set_volume(o.volume);
    }
  }
  return fleet;
}

}  // namespace helios::testing
