// ThreadPool / parallel_for unit tests: chunk coverage, exception
// propagation, nesting, teardown, and the bit-identity of parallelized
// kernels across thread counts.
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace helios {
namespace {

using tensor::Tensor;

/// Restores the default global thread configuration when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { util::set_global_threads(0); }
};

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadGuard guard;
  util::set_global_threads(4);
  int calls = 0;
  util::parallel_for(0, 0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  util::parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingletonRangeRunsInlineOnce) {
  ThreadGuard guard;
  util::set_global_threads(4);
  int calls = 0;
  const std::thread::id caller = std::this_thread::get_id();
  util::parallel_for(7, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 7);
    EXPECT_EQ(hi, 8);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, RangeIsCoveredExactlyOnce) {
  ThreadGuard guard;
  util::set_global_threads(4);
  constexpr int kN = 1000;
  std::vector<int> hits(kN, 0);  // chunks are disjoint: no data race
  util::parallel_for(0, kN, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)]++;
    }
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), kN);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  util::set_global_threads(4);
  EXPECT_THROW(
      util::parallel_for(0, 100, 1,
                         [&](std::int64_t lo, std::int64_t) {
                           if (lo >= 0) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  // The pool must still be usable after an exceptional region.
  std::atomic<int> covered{0};
  util::parallel_for(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
    covered += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(covered.load(), 100);
}

TEST(ParallelForTest, NestedParallelForRunsInline) {
  ThreadGuard guard;
  util::set_global_threads(4);
  std::atomic<int> inner_chunks{0};
  util::parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    const std::thread::id outer = std::this_thread::get_id();
    util::parallel_for(0, 64, 1, [&](std::int64_t lo, std::int64_t hi) {
      inner_chunks++;
      EXPECT_EQ(std::this_thread::get_id(), outer);
      EXPECT_EQ(lo, 0);
      EXPECT_EQ(hi, 64);
    });
  });
  // Each outer chunk saw exactly one (inline, full-range) inner call, so
  // the count equals the number of outer chunks: between 1 and 8.
  EXPECT_GE(inner_chunks.load(), 1);
  EXPECT_LE(inner_chunks.load(), 8);
}

TEST(ThreadPoolTest, OneThreadPoolSpawnsNoWorkers) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.worker_count(), 0);
  int ran = 0;
  pool.submit([&] { ++ran; });  // runs inline
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  util::ThreadPool pool(3);
  ASSERT_EQ(pool.worker_count(), 2);
  std::atomic<bool> inner_done{false};
  std::atomic<bool> outer_done{false};
  pool.submit([&] {
    pool.submit([&] { inner_done = true; });
    outer_done = true;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!(inner_done && outer_done) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(outer_done.load());
  EXPECT_TRUE(inner_done.load());
}

TEST(ThreadPoolTest, TeardownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran++;
      });
    }
  }  // destructor: queued tasks drain before join
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, GlobalThreadCountFollowsOverride) {
  ThreadGuard guard;
  util::set_global_threads(3);
  EXPECT_EQ(util::global_thread_count(), 3);
  util::set_global_threads(1);
  EXPECT_EQ(util::global_thread_count(), 1);
  // With one thread configured parallel_for must stay on the caller.
  const std::thread::id caller = std::this_thread::get_id();
  util::parallel_for(0, 1 << 12, 1, [&](std::int64_t, std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

/// Runs `fn()` under 1 and 4 global threads and EXPECTs bitwise-equal
/// tensor results.
template <typename Fn>
void expect_bit_identical(Fn fn) {
  util::set_global_threads(1);
  const Tensor sequential = fn();
  util::set_global_threads(4);
  const Tensor parallel = fn();
  ASSERT_EQ(sequential.shape(), parallel.shape());
  EXPECT_EQ(std::memcmp(sequential.data(), parallel.data(),
                        sequential.numel() * sizeof(float)),
            0);
}

TEST(ParallelKernelsTest, MatmulBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // 160^3 ≈ 4M MACs: comfortably past kIntraOpMinWork.
  util::Rng rng(123);
  const Tensor a = Tensor::randn({160, 160}, rng);
  const Tensor b = Tensor::randn({160, 160}, rng);
  std::vector<std::uint8_t> mask(160, 1);
  for (int i = 0; i < 160; i += 3) mask[static_cast<std::size_t>(i)] = 0;

  expect_bit_identical([&] { return tensor::matmul(a, b); });
  expect_bit_identical([&] {
    Tensor c({160, 160});
    tensor::matmul_masked_rows_into(a, b, mask, c);
    return c;
  });
  expect_bit_identical([&] {
    Tensor c = Tensor::zeros({160, 160});
    tensor::matmul_tn_masked_accumulate(a, b, mask, c);
    return c;
  });
  expect_bit_identical([&] {
    Tensor c({160, 160});
    tensor::matmul_nt_masked_cols_into(a, b, mask, c);
    return c;
  });
  expect_bit_identical([&] {
    Tensor c = Tensor::zeros({160, 160});
    tensor::matmul_nn_masked_inner_accumulate(a, b, mask, c);
    return c;
  });
  expect_bit_identical([&] {
    Tensor c({160, 160});
    tensor::matmul_tn_masked_out_rows_into(a, b, mask, c);
    return c;
  });
  expect_bit_identical([&] {
    Tensor c = Tensor::zeros({160, 160});
    tensor::matmul_nt_masked_rows_accumulate(a, b, mask, c);
    return c;
  });
}

TEST(ParallelKernelsTest, Conv2dForwardBackwardBitIdentical) {
  ThreadGuard guard;
  // 16 samples of 3x32x32 through 16 3x3 filters: past the intra-op gate
  // for both forward and the fixed-chunk backward.
  util::Rng data_rng(7);
  const Tensor x = Tensor::randn({16, 3, 32, 32}, data_rng);
  const Tensor gy = Tensor::randn({16, 16, 32, 32}, data_rng);

  auto run = [&](int threads, Tensor& dw, Tensor& db) {
    util::set_global_threads(threads);
    util::Rng rng(11);
    nn::Conv2d conv(3, 32, 32, 16, 3, 1, 1, rng, /*maskable=*/true);
    Tensor y = conv.forward(x, /*training=*/true);
    Tensor dx = conv.backward(gy);
    dw = *conv.grads()[0];
    db = *conv.grads()[1];
    // Pack y and dx together so one comparison covers both.
    Tensor packed({static_cast<int>(y.numel() + dx.numel())});
    std::memcpy(packed.data(), y.data(), y.numel() * sizeof(float));
    std::memcpy(packed.data() + y.numel(), dx.data(),
                dx.numel() * sizeof(float));
    return packed;
  };

  Tensor dw1, db1, dw4, db4;
  util::set_global_threads(1);
  const Tensor seq = run(1, dw1, db1);
  const Tensor par = run(4, dw4, db4);
  EXPECT_EQ(std::memcmp(seq.data(), par.data(),
                        seq.numel() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(dw1.data(), dw4.data(),
                        dw1.numel() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(db1.data(), db4.data(),
                        db1.numel() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace helios
