#include <gtest/gtest.h>

#include "models/zoo.h"

namespace helios::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Zoo, LeNetShapesAndNeurons) {
  nn::Model m = make_lenet({1, 28, 28, 10}, 1);
  util::Rng rng(2);
  Tensor x = Tensor::randn({2, 1, 28, 28}, rng);
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  // conv1(6) + conv2(16) + fc1(120) + fc2(84); head not maskable.
  EXPECT_EQ(m.neuron_total(), 226);
  EXPECT_EQ(m.param_count(), 61706u);  // classic LeNet-5 on 28x28
}

TEST(Zoo, AlexNetLiteShapes) {
  nn::Model m = make_alexnet_lite({3, 32, 32, 10}, 1, 8);
  util::Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{2, 10}));
  // 5 conv stages + 2 hidden dense are maskable.
  EXPECT_EQ(m.neuron_total(), 8 + 16 + 24 + 24 + 16 + 128 + 64);
}

TEST(Zoo, ResNetLiteShapesAndBatchNormFollowers) {
  nn::Model m = make_resnet18_lite({3, 16, 16, 100}, 1, 8, 1);
  util::Rng rng(4);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{2, 100}));
  // Stem conv (8) + 4 stages x 1 block x 2 convs: 8+8 + 16+16 + 32+32 +
  // 64+64 = 240; + stem 8 = 248.
  EXPECT_EQ(m.neuron_total(), 248);
  // Every maskable conv neuron owns its BN affine pair: filter + bias +
  // gamma + beta.
  const auto& stem_neuron = m.neurons()[0];
  EXPECT_EQ(stem_neuron.param_count(), 3u * 9u + 1u + 2u);
}

TEST(Zoo, ResNetFullDepthBuilds) {
  nn::Model m = make_resnet18_lite({3, 16, 16, 10}, 1, 4, 2);
  util::Rng rng(5);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{1, 10}));
}

TEST(Zoo, MlpBuilds) {
  nn::Model m = make_mlp({1, 6, 6, 4}, 1, 12);
  util::Rng rng(6);
  Tensor x = Tensor::randn({3, 1, 6, 6}, rng);
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{3, 4}));
  EXPECT_EQ(m.neuron_total(), 12);
}

TEST(Zoo, SpecBuildersAreDeterministic) {
  const ModelSpec spec = lenet_spec();
  nn::Model a = spec.build(42);
  nn::Model b = spec.build(42);
  EXPECT_EQ(a.params_flat(), b.params_flat());
  nn::Model c = spec.build(43);
  EXPECT_NE(a.params_flat(), c.params_flat());
}

TEST(Zoo, SpecsReportNames) {
  EXPECT_EQ(lenet_spec().name, "LeNet");
  EXPECT_EQ(alexnet_lite_spec().name, "AlexNet-lite");
  EXPECT_EQ(resnet18_lite_spec().name, "ResNet18-lite");
  EXPECT_EQ(mlp_spec({1, 4, 4, 2}).name, "MLP");
}

TEST(Zoo, RejectsBadArguments) {
  EXPECT_THROW(make_alexnet_lite({3, 32, 32, 10}, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(make_resnet18_lite({3, 16, 16, 10}, 1, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(make_mlp({1, 4, 4, 2}, 1, 0), std::invalid_argument);
}

TEST(Zoo, WidthScalingChangesCapacity) {
  nn::Model narrow = make_alexnet_lite({3, 16, 16, 10}, 1, 4);
  nn::Model wide = make_alexnet_lite({3, 16, 16, 10}, 1, 8);
  EXPECT_LT(narrow.param_count(), wide.param_count());
}

}  // namespace
}  // namespace helios::models
