// bench_all — one driver for the perf-trajectory artifacts.
//
// Runs the three machine-readable benchmark writers in sequence so a single
// invocation refreshes every BENCH_*.json in the current directory:
//
//   bench_micro_kernels  ->  BENCH_parallel.json (1/2/4-thread sweep)
//   bench_net            ->  BENCH_net.json      (wire bytes across loss rates)
//   bench_scale          ->  BENCH_scale.json    (fleet-size scaling)
//   checkasm_kernels     ->  BENCH_kernels.json  (scalar vs SIMD backends)
//
//   bench_all [--smoke] [--bin-dir <dir>]
//
// --smoke sets HELIOS_BENCH_SCALE=quick (the benches' own reduced scale) so
// the whole sweep finishes in CI time; the committed baselines under
// bench/baselines/ are quick-scale for exactly this reason — the gate always
// compares quick against quick. --bin-dir points at the directory holding
// the bench binaries (default: ../bench relative to this binary, the build
// tree layout). Per-phase wall times are reported per bench on stdout; exit
// is non-zero as soon as any bench fails.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace {

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string bin_dir = dirname_of(argv[0]) + "/../bench";
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--smoke") {
      smoke = true;
    } else if (args[i] == "--bin-dir" && i + 1 < args.size()) {
      bin_dir = args[++i];
    } else {
      std::cerr << "usage: bench_all [--smoke] [--bin-dir <dir>]\n";
      return 2;
    }
  }
  if (smoke) setenv("HELIOS_BENCH_SCALE", "quick", /*overwrite=*/1);

  struct Step {
    const char* label;
    std::string command;
  };
  // The google-benchmark portion of bench_micro_kernels is for interactive
  // profiling; a filter that matches nothing skips it while the binary
  // still runs the hand-timed thread sweep that writes BENCH_parallel.json.
  const std::vector<Step> steps = {
      {"parallel", bin_dir + "/bench_micro_kernels"
                             " --benchmark_filter=__none__"},
      {"net", bin_dir + "/bench_net"},
      {"scale", bin_dir + "/bench_scale"},
      // The checkasm harness lives with the tests; its bench mode measures
      // every kernel on every available backend (single call, no threading).
      {"kernels", bin_dir + "/../tests/checkasm_kernels --bench"},
  };

  double total = 0.0;
  for (const Step& step : steps) {
    std::cout << "[bench_all] " << step.label << ": " << step.command << "\n"
              << std::flush;
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = std::system(step.command.c_str());
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    total += dt.count();
    std::cout << "[bench_all] " << step.label << " finished in " << dt.count()
              << " s\n";
    if (rc != 0) {
      std::cerr << "[bench_all] " << step.label << " failed (exit " << rc
                << ")\n";
      return 1;
    }
  }
  std::cout << "[bench_all] all benches done in " << total
            << " s; wrote BENCH_parallel.json BENCH_net.json "
               "BENCH_scale.json BENCH_kernels.json\n";
  return 0;
}
