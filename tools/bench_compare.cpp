// bench_compare — the perf-trajectory regression gate.
//
//   bench_compare [--check] [--baseline-dir <dir>] [--new-dir <dir>]
//                 [file...]
//
// Diffs freshly generated BENCH_*.json snapshots (from bench_all, in
// --new-dir, default ".") against the committed baselines (--baseline-dir,
// default "bench/baselines"). Every numeric leaf is flattened to a dotted
// path (array elements keyed by their name / devices / threads / loss
// fields) and judged with a per-metric noise threshold:
//
//   *seconds*            regression when new > old * 1.8 + 2 ms
//   rounds_per_second    regression when new < old / 1.8 - slack
//   *accuracy*           regression when new < old - 0.05
//   *rss_mb, *replica_mb regression when new > old * 2 + 16 MB
//   *_gflops             regression when new < old / 1.8 (throughput)
//   speedup_*_vs_scalar  regression when a matmul case drops below 2x
//                        while the baseline held it, or any case falls
//                        under old / 1.5
//   wire_reduction_vs_fp32   regression when the int8pn codec drops below
//                        its 4x acceptance floor, or any codec falls
//                        under old / 1.5
//   accuracy_delta_vs_fp32   regression when int8 quantization costs more
//                        than 0.5% final accuracy vs the fp32 run; other
//                        codecs ride the 0.05 drift rule
//   *_cycles_per_call    informational only (machine-dependent)
//   counts / bytes / MB  regression when off by > 20% + small abs slack
//
// The wide time tolerance absorbs machine noise (a repeat run on the same
// box passes) while still tripping on a genuine 2x slowdown. Scale or
// schema mismatches and metrics missing from the fresh run are structural
// failures. Informational drifts are reported but never fail the gate.
// Exit: 0 by default; with --check, 1 when any regression was found.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using helios::util::JsonValue;

struct Metric {
  std::string path;
  double value = 0.0;
};

/// Array elements are keyed by their discriminating field so paths stay
/// stable when ordering or counts change.
std::string element_key(const JsonValue& v, std::size_t index) {
  if (v.is_object()) {
    for (const char* key : {"name", "devices", "threads", "loss"}) {
      if (const JsonValue* f = v.find(key)) {
        if (f->is_string()) return f->as_string();
        if (f->is_number()) {
          std::ostringstream os;
          os << key << '=' << f->as_number();
          return os.str();
        }
      }
    }
  }
  return std::to_string(index);
}

void flatten(const JsonValue& v, const std::string& prefix,
             std::vector<Metric>& out) {
  if (v.is_number()) {
    out.push_back({prefix, v.as_number()});
  } else if (v.is_object()) {
    for (const auto& [k, child] : v.members()) {
      flatten(child, prefix.empty() ? k : prefix + "." + k, out);
    }
  } else if (v.is_array()) {
    for (std::size_t i = 0; i < v.items().size(); ++i) {
      flatten(v.items()[i], prefix + "[" + element_key(v.items()[i], i) + "]",
              out);
    }
  }
  // Strings/bools/nulls are configuration, compared structurally via
  // "scale"/"schema" before flattening.
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The leaf key (text after the last '.'), for classification.
std::string leaf(const std::string& path) {
  const std::size_t dot = path.find_last_of('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

enum class Verdict { kOk, kRegression, kInfo };

/// Applies the per-metric thresholds documented in the header comment.
Verdict judge(const std::string& path, double oldv, double newv,
              std::string& why) {
  const std::string key = leaf(path);
  std::ostringstream os;
  if (key == "speedup_4_vs_1" || key == "hardware_concurrency" ||
      key == "schema") {
    return Verdict::kOk;  // schema checked structurally; the rest is env
  }
  if (key.find("seconds") != std::string::npos) {
    if (newv > oldv * 1.8 + 0.002) {
      os << "time " << oldv << " -> " << newv << " s (> 1.8x + 2 ms)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (ends_with(key, "_cycles_per_call")) {
    return Verdict::kOk;  // cycle counts are CPU-model-specific
  }
  if (key.rfind("speedup_", 0) == 0 && ends_with(key, "_vs_scalar")) {
    // The SIMD backend's reason to exist is the >= 2x single-thread win on
    // the matmul kernels; losing it (or most of the baseline's ratio) is a
    // regression even if absolute times still pass the loose seconds rule.
    // The hard 2x floor is armed only for matmul cases — the optimizer
    // kernels are memory-bound and sit close enough to 2x that the floor
    // would flake on machine noise; the ratio rule still covers them.
    const bool matmul_case = path.find("matmul") != std::string::npos;
    if ((matmul_case && oldv >= 2.0 && newv < 2.0) || newv < oldv / 1.5) {
      os << "speedup " << oldv << "x -> " << newv << "x vs scalar";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (ends_with(key, "_gflops")) {
    if (newv < oldv / 1.8) {
      os << "throughput " << oldv << " -> " << newv << " GFLOP/s (< 1/1.8x)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (key == "rounds_per_second") {
    if (newv < oldv / 1.8 - 1e-9) {
      os << "throughput " << oldv << " -> " << newv << " rounds/s (< 1/1.8x)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (key == "wire_reduction_vs_fp32") {
    // The quantized wire codec's acceptance floor: int8 per-neuron must
    // keep a >= 4x measured wire-byte reduction over fp32 dense. Other
    // codecs (fp16 sits near 2x) just must not lose most of their
    // baseline's ratio.
    const bool int8_case = path.find("int8pn") != std::string::npos;
    if ((int8_case && newv < 4.0) || newv < oldv / 1.5) {
      os << "wire reduction " << oldv << "x -> " << newv << "x vs fp32"
         << (int8_case && newv < 4.0 ? " (below the 4x int8pn floor)" : "");
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (key == "accuracy_delta_vs_fp32") {
    // The acceptance claim: int8 per-neuron with error feedback costs less
    // than 0.5% final accuracy vs the fp32 run at the same loss rate — an
    // absolute floor, not relative to the baseline value. fp16 rows ride
    // the looser drift rule instead: on the toy sweep task their deltas
    // are trajectory noise (a handful of eval samples), not codec cost.
    const bool int8_case = path.find("int8") != std::string::npos;
    if (int8_case && newv < -0.005) {
      os << "accuracy delta vs fp32 " << oldv << " -> " << newv
         << " (quantization cost exceeds the 0.5% floor)";
      why = os.str();
      return Verdict::kRegression;
    }
    if (newv < oldv - 0.05) {
      os << "accuracy delta vs fp32 " << oldv << " -> " << newv
         << " (dropped > 0.05 vs baseline)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (key.find("accuracy") != std::string::npos) {
    if (newv < oldv - 0.05) {
      os << "accuracy " << oldv << " -> " << newv << " (dropped > 0.05)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  if (ends_with(key, "rss_mb") || ends_with(key, "replica_mb")) {
    if (newv > oldv * 2.0 + 16.0) {
      os << "memory " << oldv << " -> " << newv << " MB (> 2x + 16 MB)";
      why = os.str();
      return Verdict::kRegression;
    }
    return Verdict::kOk;
  }
  // Counts, bytes and MB totals: deterministic under fixed seeds, so a
  // drift beyond noise means the workload itself changed.
  if (std::abs(newv - oldv) > std::abs(oldv) * 0.2 + 5.0) {
    os << "count " << oldv << " -> " << newv << " (off > 20% + 5)";
    why = os.str();
    return Verdict::kInfo;
  }
  return Verdict::kOk;
}

struct FileReport {
  int regressions = 0;
  int infos = 0;
  int compared = 0;
};

JsonValue load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return JsonValue::parse(buf.str());
}

FileReport compare_file(const std::string& name, const std::string& old_path,
                        const std::string& new_path) {
  FileReport r;
  const JsonValue oldv = load(old_path);
  const JsonValue newv = load(new_path);

  // Structural gates: comparing different schemas or bench scales would
  // make every threshold meaningless.
  for (const char* key : {"schema", "scale"}) {
    const JsonValue* a = oldv.find(key);
    const JsonValue* b = newv.find(key);
    const std::string as = a ? (a->is_string() ? a->as_string()
                                               : std::to_string(static_cast<long long>(a->as_number())))
                             : "<absent>";
    const std::string bs = b ? (b->is_string() ? b->as_string()
                                               : std::to_string(static_cast<long long>(b->as_number())))
                             : "<absent>";
    if (as != bs) {
      std::cout << "REGRESSION " << name << " " << key << ": baseline " << as
                << " vs new " << bs << " (structural mismatch)\n";
      ++r.regressions;
    }
  }

  std::vector<Metric> old_metrics;
  std::vector<Metric> new_metrics;
  flatten(oldv, "", old_metrics);
  flatten(newv, "", new_metrics);

  auto find_new = [&](const std::string& path) -> const Metric* {
    for (const Metric& m : new_metrics) {
      if (m.path == path) return &m;
    }
    return nullptr;
  };

  for (const Metric& m : old_metrics) {
    const Metric* n = find_new(m.path);
    if (n == nullptr) {
      std::cout << "REGRESSION " << name << " " << m.path
                << ": missing from the new run\n";
      ++r.regressions;
      continue;
    }
    ++r.compared;
    std::string why;
    switch (judge(m.path, m.value, n->value, why)) {
      case Verdict::kRegression:
        std::cout << "REGRESSION " << name << " " << m.path << ": " << why
                  << "\n";
        ++r.regressions;
        break;
      case Verdict::kInfo:
        std::cout << "note       " << name << " " << m.path << ": " << why
                  << "\n";
        ++r.infos;
        break;
      case Verdict::kOk:
        break;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string baseline_dir = "bench/baselines";
  std::string new_dir = ".";
  std::vector<std::string> files;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--baseline-dir" && i + 1 < args.size()) {
      baseline_dir = args[++i];
    } else if (args[i] == "--new-dir" && i + 1 < args.size()) {
      new_dir = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "usage: bench_compare [--check] [--baseline-dir <dir>]"
                << " [--new-dir <dir>] [file...]\n";
      return 2;
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.empty()) {
    files = {"BENCH_parallel.json", "BENCH_net.json", "BENCH_scale.json",
             "BENCH_kernels.json"};
  }

  int regressions = 0;
  int compared = 0;
  try {
    for (const std::string& f : files) {
      const FileReport r =
          compare_file(f, baseline_dir + "/" + f, new_dir + "/" + f);
      regressions += r.regressions;
      compared += r.compared;
      std::cout << f << ": " << r.compared << " metrics compared, "
                << r.regressions << " regression(s), " << r.infos
                << " note(s)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 1;
  }
  if (regressions > 0) {
    std::cout << "bench_compare: " << regressions << " regression(s) across "
              << compared << " compared metrics\n";
    return check ? 1 : 0;
  }
  std::cout << "bench_compare: no regressions across " << compared
            << " compared metrics\n";
  return 0;
}
