// helios-crashtest — the fault-injection harness for checkpoint/resume.
//
// Forks the round loop and SIGKILLs it — at randomized round boundaries,
// mid-checkpoint-write (a torn generation file lands on disk), and at
// randomized wall-clock instants while rounds are in flight — then resumes
// from whatever the dead process left behind and diffs the completed run,
// byte for byte, against a golden uninterrupted run. Every trial must
// produce an identical result file: identical per-round records and
// identical final global parameters. Exit 0 when every trial matches.
//
//   helios-crashtest [--strategy NAME] [--cycles N] [--trials N]
//                    [--seed S] [--dir PATH] [--keep]
//
//   --strategy   one of helios|sync|async|afo|random|static (default: sweep
//                all six, --trials kills each)
//   --cycles     rounds per run (default 8)
//   --trials     randomized kills per strategy (default 4; the default
//                sweep therefore injects 24 faults)
//   --seed       RNG seed for kill-point randomization (default 1)
//   --dir        scratch directory (default: a fresh dir under /tmp)
//   --keep       leave the scratch directory behind for inspection
//
// Fork safety: the parent process never touches the fleet — every compute
// phase (golden run, killed run, resumed run) happens in its own forked
// child, so no thread pool or lock ever crosses a fork().
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/helios_strategy.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/checkpoint.h"
#include "fl/fleet.h"
#include "fl/sync.h"
#include "sim/population.h"
#include "util/rng.h"

namespace {

using namespace helios;
namespace fs = std::filesystem;

int usage() {
  std::cerr << "usage: helios-crashtest [--strategy NAME] [--cycles N]"
            << " [--trials N] [--seed S] [--dir PATH] [--keep]\n";
  return 2;
}

std::unique_ptr<fl::Strategy> make_strategy(const std::string& kind) {
  if (kind == "helios") {
    return std::make_unique<core::HeliosStrategy>(core::HeliosConfig{});
  }
  if (kind == "sync") return std::make_unique<fl::SyncFL>();
  if (kind == "async") return std::make_unique<fl::AsyncFL>();
  if (kind == "afo") return std::make_unique<fl::Afo>();
  if (kind == "random") return std::make_unique<fl::RandomSubmodel>();
  if (kind == "static") return std::make_unique<fl::StaticPrune>();
  throw std::invalid_argument("unknown strategy " + kind);
}

fl::Fleet make_fleet() {
  const sim::PopulationGenerator pop(sim::paper_4dev());
  return sim::build_fleet(pop);
}

/// Serializes a finished run for byte comparison: per-round records plus
/// the final global parameters and buffers.
void write_result(const std::string& path, const fl::RunResult& result,
                  fl::Fleet& fleet) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  const auto u64 = [&](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto f64 = [&](double v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  u64(result.rounds.size());
  for (const fl::RoundRecord& r : result.rounds) {
    u64(static_cast<std::uint64_t>(r.cycle));
    f64(r.virtual_time);
    f64(r.test_accuracy);
    f64(r.mean_train_loss);
    f64(r.upload_mb);
  }
  const std::vector<float>& global = fleet.server().global();
  const std::vector<float>& buffers = fleet.server().global_buffers();
  u64(global.size());
  os.write(reinterpret_cast<const char*>(global.data()),
           static_cast<std::streamsize>(global.size() * sizeof(float)));
  u64(buffers.size());
  os.write(reinterpret_cast<const char*>(buffers.data()),
           static_cast<std::streamsize>(buffers.size() * sizeof(float)));
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

enum class KillMode { kBoundary, kMidWrite, kTimed };

const char* mode_name(KillMode m) {
  switch (m) {
    case KillMode::kBoundary: return "boundary";
    case KillMode::kMidWrite: return "mid-write";
    case KillMode::kTimed: return "timed";
  }
  return "?";
}

/// Child body: run the checkpointed round loop and die. Boundary mode
/// SIGKILLs itself right after the round `kill_round` checkpoint landed;
/// mid-write mode additionally leaves a torn next-generation file (what a
/// kill during a non-atomic write would strand — latest_valid must skip
/// it); timed mode just keeps looping (with a widened per-round window)
/// until the parent's randomized SIGKILL arrives.
[[noreturn]] void run_victim(const std::string& kind, int cycles,
                             const std::string& base, KillMode mode,
                             int kill_round) {
  fl::Fleet fleet = make_fleet();
  auto strategy = make_strategy(kind);
  fl::CheckpointManager manager(base, /*keep_last=*/3);
  fl::RunResult partial;
  partial.method = strategy->name();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    strategy->run_range(fleet, partial, cycle, cycle + 1);
    const std::string path =
        manager.save(fl::make_checkpoint_payload(fleet, strategy.get(), partial));
    if (mode != KillMode::kTimed && cycle + 1 == kill_round) {
      if (mode == KillMode::kMidWrite) {
        const std::string good = slurp(path);
        const std::vector<long> gens = manager.generations();
        std::ofstream torn(manager.generation_path(gens.back() + 1),
                           std::ios::binary | std::ios::trunc);
        torn.write(good.data(),
                   static_cast<std::streamsize>(good.size() / 2));
        torn.flush();
      }
      raise(SIGKILL);
    }
    if (mode == KillMode::kTimed) usleep(2000);  // widen the kill window
  }
  _exit(0);  // timed kill arrived after the run finished — also a valid case
}

/// Child body: resume from whatever generations survived and run to
/// completion (run_resumable starts from scratch when nothing survived —
/// a kill before the first checkpoint must still reproduce the golden
/// run). Writes the result file and exits 0.
[[noreturn]] void run_verifier(const std::string& kind, int cycles,
                               const std::string& base,
                               const std::string& result_path) {
  try {
    fl::Fleet fleet = make_fleet();
    auto strategy = make_strategy(kind);
    fl::ResumableOptions opts;
    opts.base_path = base;
    opts.keep_last = 3;
    const fl::RunResult result =
        fl::run_resumable(fleet, *strategy, cycles, opts);
    write_result(result_path, result, fleet);
    _exit(0);
  } catch (const std::exception& e) {
    std::cerr << "verifier(" << kind << "): " << e.what() << "\n";
    _exit(1);
  }
}

/// Forks `body`; returns the child's wait status.
template <typename Body>
int forked(Body body, pid_t* pid_out = nullptr) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::cerr << "fork failed\n";
    exit(1);
  }
  if (pid == 0) {
    body();   // [[noreturn]] bodies _exit below
    _exit(0);
  }
  if (pid_out) {
    *pid_out = pid;
    return 0;  // caller kills + reaps
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> strategies = {"helios", "sync",   "async",
                                         "afo",    "random", "static"};
  int cycles = 8;
  int trials = 4;
  std::uint64_t seed = 1;
  std::string dir;
  bool keep = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << args[i] << " needs a value\n";
        exit(usage());
      }
      return args[++i];
    };
    if (args[i] == "--strategy") {
      strategies = {value()};
    } else if (args[i] == "--cycles") {
      cycles = std::stoi(value());
    } else if (args[i] == "--trials") {
      trials = std::stoi(value());
    } else if (args[i] == "--seed") {
      seed = std::stoull(value());
    } else if (args[i] == "--dir") {
      dir = value();
    } else if (args[i] == "--keep") {
      keep = true;
    } else {
      return usage();
    }
  }
  if (cycles < 2) {
    std::cerr << "--cycles must be >= 2\n";
    return usage();
  }

  if (dir.empty()) {
    dir = (fs::temp_directory_path() /
           ("helios_crashtest_" + std::to_string(getpid())))
              .string();
  }
  fs::remove_all(dir);
  fs::create_directories(dir);

  util::Rng rng(seed);
  int failures = 0;
  int ran = 0;

  for (const std::string& kind : strategies) {
    // Golden uninterrupted run, in its own child (fork safety, and the
    // exact code path every trial's verifier takes).
    const std::string golden_path = dir + "/" + kind + ".golden";
    const int gstatus = forked([&] {
      run_verifier(kind, cycles, dir + "/" + kind + ".golden_ck",
                   golden_path);
    });
    if (!WIFEXITED(gstatus) || WEXITSTATUS(gstatus) != 0) {
      std::cerr << "FAIL " << kind << ": golden run died\n";
      ++failures;
      continue;
    }
    const std::string golden = slurp(golden_path);

    for (int t = 0; t < trials; ++t) {
      const KillMode mode = static_cast<KillMode>(rng.uniform_int(3));
      const int kill_round = 1 + rng.uniform_int(cycles - 1);
      const std::string base =
          dir + "/" + kind + ".t" + std::to_string(t) + "/ck";
      fs::create_directories(fs::path(base).parent_path());

      if (mode == KillMode::kTimed) {
        pid_t victim = -1;
        forked([&] { run_victim(kind, cycles, base, mode, 0); }, &victim);
        usleep(static_cast<useconds_t>(rng.uniform_int(30000)));
        kill(victim, SIGKILL);
        int status = 0;
        waitpid(victim, &status, 0);
      } else {
        const int status =
            forked([&] { run_victim(kind, cycles, base, mode, kill_round); });
        if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
          std::cerr << "FAIL " << kind << " trial " << t
                    << ": victim did not die by SIGKILL\n";
          ++failures;
          continue;
        }
      }

      const std::string result_path =
          dir + "/" + kind + ".t" + std::to_string(t) + ".result";
      const int vstatus =
          forked([&] { run_verifier(kind, cycles, base, result_path); });
      ++ran;
      if (!WIFEXITED(vstatus) || WEXITSTATUS(vstatus) != 0) {
        std::cerr << "FAIL " << kind << " trial " << t << " ("
                  << mode_name(mode) << " @ round " << kill_round
                  << "): resume crashed\n";
        ++failures;
        continue;
      }
      if (slurp(result_path) != golden) {
        std::cerr << "FAIL " << kind << " trial " << t << " ("
                  << mode_name(mode) << " @ round " << kill_round
                  << "): resumed run differs from golden\n";
        ++failures;
      } else {
        std::cout << "ok " << kind << " trial " << t << " ("
                  << mode_name(mode) << " @ round " << kill_round << ")\n";
      }
    }
  }

  if (!keep) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  } else {
    std::cout << "scratch kept at " << dir << "\n";
  }
  std::cout << ran << " fault trials, " << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}
