// helios-journal — the run-journal (flight recorder) CLI.
//
//   helios-journal summary <run.journal.jsonl> [--json]
//       Per-device participation, straggler drift and the loss / retransmit
//       breakdown, aggregated from the event stream. --json emits the
//       machine-readable equivalent.
//
//   helios-journal diff <a.journal.jsonl> <b.journal.jsonl>
//       Field-by-field comparison of the two runs' summaries. Exit 1 when
//       the runs differ, 0 when they agree.
//
//   helios-journal replay <run.journal.jsonl> [--threshold N]
//       Replays the journal into a StragglerDashboard and renders it — the
//       same per-device / percentile table a live run prints. --threshold
//       overrides the per-device vs fleet-summary cutover.
//
//   helios-journal resume-check <run.journal.jsonl>
//       Validates that a journal spanning one or more checkpoint resumes
//       reads as a single seamless run: exactly one run_start, round events
//       contiguous from 0 with no duplicates (a duplicate means a resume
//       replayed a round the checkpoint already recorded; a gap means the
//       journal was reopened at the wrong byte offset), and nothing after
//       run_end. Exit 1 on any drift.
//
// Journals aggregate per device before summarizing, so recordings of the
// same run at different thread counts (whose lines interleave differently)
// summarize and diff as identical.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/journal_reader.h"

namespace {

using namespace helios;

int usage() {
  std::cerr << "usage: helios-journal summary <run.journal.jsonl> [--json]\n"
            << "       helios-journal diff <a.jsonl> <b.jsonl>\n"
            << "       helios-journal replay <run.journal.jsonl>"
            << " [--threshold N]\n"
            << "       helios-journal resume-check <run.journal.jsonl>\n";
  return 2;
}

/// The resume-check drift rules (see the header comment). Returns the
/// number of problems found, printing each.
int resume_check(const std::vector<obs::JournalEvent>& events) {
  int problems = 0;
  auto complain = [&](const std::string& what) {
    std::cout << "DRIFT: " << what << "\n";
    ++problems;
  };
  if (events.empty()) {
    complain("journal is empty");
    return problems;
  }
  int run_starts = 0;
  int run_ends = 0;
  bool after_end = false;
  int next_round = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JournalEvent& ev = events[i];
    if (run_ends > 0 && !after_end && ev.type != "run_end") {
      complain("event " + std::to_string(i) + " (" + ev.type +
               ") after run_end");
      after_end = true;  // report the first offender once
    }
    if (ev.type == "run_start") {
      ++run_starts;
      if (i != 0) {
        complain("run_start at event " + std::to_string(i) +
                 " (a resume must continue the journal, not restart it)");
      }
    } else if (ev.type == "run_end") {
      ++run_ends;
    } else if (ev.type == "round") {
      if (ev.round == next_round) {
        ++next_round;
      } else if (ev.round < next_round) {
        complain("duplicate round " + std::to_string(ev.round) +
                 " (resume replayed an already-recorded round)");
      } else {
        complain("round gap: expected " + std::to_string(next_round) +
                 ", found " + std::to_string(ev.round) +
                 " (journal reopened at the wrong offset)");
        next_round = ev.round + 1;
      }
    }
  }
  if (run_starts == 0) complain("no run_start event");
  if (run_ends > 1) {
    complain(std::to_string(run_ends) +
             " run_end events (each resume must truncate the tail)");
  }
  if (next_round == 0) complain("no round events");
  if (problems == 0) {
    std::cout << "ok: " << events.size() << " events, rounds 0.."
              << next_round - 1 << " contiguous, single run\n";
  }
  return problems;
}

std::vector<obs::JournalEvent> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return obs::read_journal(is);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  try {
    if (cmd == "summary") {
      if (args.size() < 2) return usage();
      const bool json = args.size() > 2 && args[2] == "--json";
      const obs::JournalSummary s = obs::summarize_journal(load(args[1]));
      if (json) {
        obs::write_summary_json(std::cout, s);
      } else {
        obs::write_summary(std::cout, s);
      }
      return 0;
    }
    if (cmd == "diff") {
      if (args.size() < 3) return usage();
      const obs::JournalSummary a = obs::summarize_journal(load(args[1]));
      const obs::JournalSummary b = obs::summarize_journal(load(args[2]));
      const int differing = obs::write_diff(std::cout, a, b);
      if (differing == 0) return 0;
      std::cout << differing << " field(s) differ\n";
      return 1;
    }
    if (cmd == "resume-check") {
      if (args.size() < 2) return usage();
      return resume_check(load(args[1])) == 0 ? 0 : 1;
    }
    if (cmd == "replay") {
      if (args.size() < 2) return usage();
      obs::StragglerDashboard dash;
      for (std::size_t i = 2; i + 1 < args.size(); ++i) {
        if (args[i] == "--threshold") {
          dash.set_summary_threshold(
              static_cast<std::size_t>(std::atoi(args[i + 1].c_str())));
        }
      }
      obs::replay_dashboard(load(args[1]), dash);
      dash.render(std::cout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "helios-journal: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
