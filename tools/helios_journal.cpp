// helios-journal — the run-journal (flight recorder) CLI.
//
//   helios-journal summary <run.journal.jsonl> [--json]
//       Per-device participation, straggler drift and the loss / retransmit
//       breakdown, aggregated from the event stream. --json emits the
//       machine-readable equivalent.
//
//   helios-journal diff <a.journal.jsonl> <b.journal.jsonl>
//       Field-by-field comparison of the two runs' summaries. Exit 1 when
//       the runs differ, 0 when they agree.
//
//   helios-journal replay <run.journal.jsonl> [--threshold N]
//       Replays the journal into a StragglerDashboard and renders it — the
//       same per-device / percentile table a live run prints. --threshold
//       overrides the per-device vs fleet-summary cutover.
//
// Journals aggregate per device before summarizing, so recordings of the
// same run at different thread counts (whose lines interleave differently)
// summarize and diff as identical.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/journal_reader.h"

namespace {

using namespace helios;

int usage() {
  std::cerr << "usage: helios-journal summary <run.journal.jsonl> [--json]\n"
            << "       helios-journal diff <a.jsonl> <b.jsonl>\n"
            << "       helios-journal replay <run.journal.jsonl>"
            << " [--threshold N]\n";
  return 2;
}

std::vector<obs::JournalEvent> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return obs::read_journal(is);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  try {
    if (cmd == "summary") {
      if (args.size() < 2) return usage();
      const bool json = args.size() > 2 && args[2] == "--json";
      const obs::JournalSummary s = obs::summarize_journal(load(args[1]));
      if (json) {
        obs::write_summary_json(std::cout, s);
      } else {
        obs::write_summary(std::cout, s);
      }
      return 0;
    }
    if (cmd == "diff") {
      if (args.size() < 3) return usage();
      const obs::JournalSummary a = obs::summarize_journal(load(args[1]));
      const obs::JournalSummary b = obs::summarize_journal(load(args[2]));
      const int differing = obs::write_diff(std::cout, a, b);
      if (differing == 0) return 0;
      std::cout << differing << " field(s) differ\n";
      return 1;
    }
    if (cmd == "replay") {
      if (args.size() < 2) return usage();
      obs::StragglerDashboard dash;
      for (std::size_t i = 2; i + 1 < args.size(); ++i) {
        if (args[i] == "--threshold") {
          dash.set_summary_threshold(
              static_cast<std::size_t>(std::atoi(args[i + 1].c_str())));
        }
      }
      obs::replay_dashboard(load(args[1]), dash);
      dash.render(std::cout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "helios-journal: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
